package spectrum

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"addcrn/internal/rng"
	"addcrn/internal/sim"
)

func TestTraceValidate(t *testing.T) {
	valid := &Trace{PU: [][]Interval{{{0, 5}, {7, 9}}}, Slots: 10}
	if err := valid.Validate(); err != nil {
		t.Errorf("valid trace rejected: %v", err)
	}
	tests := []struct {
		name string
		tr   *Trace
	}{
		{"zero horizon", &Trace{PU: [][]Interval{{}}, Slots: 0}},
		{"overlap", &Trace{PU: [][]Interval{{{0, 5}, {4, 8}}}, Slots: 10}},
		{"unsorted", &Trace{PU: [][]Interval{{{5, 8}, {0, 2}}}, Slots: 10}},
		{"empty interval", &Trace{PU: [][]Interval{{{3, 3}}}, Slots: 10}},
		{"inverted", &Trace{PU: [][]Interval{{{5, 2}}}, Slots: 10}},
		{"beyond horizon", &Trace{PU: [][]Interval{{{8, 12}}}, Slots: 10}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if err := tt.tr.Validate(); err == nil {
				t.Errorf("%s accepted", tt.name)
			}
		})
	}
}

func TestTraceDutyCycle(t *testing.T) {
	tr := &Trace{PU: [][]Interval{{{0, 5}}, {}}, Slots: 10}
	if got := tr.DutyCycle(); math.Abs(got-0.25) > 1e-12 {
		t.Errorf("duty cycle %v, want 0.25", got)
	}
	empty := &Trace{}
	if empty.DutyCycle() != 0 {
		t.Error("empty trace duty cycle != 0")
	}
}

func TestGenerateBernoulliTraceDutyCycle(t *testing.T) {
	tr := GenerateBernoulliTrace(20, 0.3, 20000, rng.New(1))
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := tr.DutyCycle(); math.Abs(got-0.3) > 0.02 {
		t.Errorf("duty cycle %v, want ~0.3", got)
	}
}

func TestGenerateBernoulliTraceDeterministic(t *testing.T) {
	a := GenerateBernoulliTrace(3, 0.4, 1000, rng.New(7))
	b := GenerateBernoulliTrace(3, 0.4, 1000, rng.New(7))
	for i := range a.PU {
		if len(a.PU[i]) != len(b.PU[i]) {
			t.Fatal("traces with equal seeds diverged")
		}
		for j := range a.PU[i] {
			if a.PU[i][j] != b.PU[i][j] {
				t.Fatal("traces with equal seeds diverged")
			}
		}
	}
}

func TestGenerateGilbertTrace(t *testing.T) {
	tr, err := GenerateGilbertTrace(10, 20, 60, 50000, rng.New(2))
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	want := 20.0 / 80
	if got := tr.DutyCycle(); math.Abs(got-want) > 0.03 {
		t.Errorf("duty cycle %v, want ~%v", got, want)
	}
	// Burstiness: mean active run length should be near meanOn (clipped
	// runs at the horizon bias it slightly low).
	var runs, total float64
	for _, iv := range tr.PU {
		for _, in := range iv {
			runs++
			total += float64(in.End - in.Start)
		}
	}
	if runs == 0 {
		t.Fatal("no active runs")
	}
	if meanRun := total / runs; meanRun < 14 || meanRun > 26 {
		t.Errorf("mean burst %v, want ~20", meanRun)
	}
	if _, err := GenerateGilbertTrace(1, 0.5, 10, 100, rng.New(1)); err == nil {
		t.Error("sub-slot burst length accepted")
	}
}

func TestTraceCSVRoundTrip(t *testing.T) {
	tr := GenerateBernoulliTrace(5, 0.3, 500, rng.New(3))
	var buf bytes.Buffer
	if err := tr.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCSV(&buf, 5)
	if err != nil {
		t.Fatal(err)
	}
	if back.Slots != tr.Slots {
		t.Errorf("horizon %d, want %d", back.Slots, tr.Slots)
	}
	for i := range tr.PU {
		if len(back.PU[i]) != len(tr.PU[i]) {
			t.Fatalf("PU %d: %d intervals, want %d", i, len(back.PU[i]), len(tr.PU[i]))
		}
		for j := range tr.PU[i] {
			if back.PU[i][j] != tr.PU[i][j] {
				t.Fatalf("PU %d interval %d mismatch", i, j)
			}
		}
	}
}

func TestReadCSVErrors(t *testing.T) {
	cases := []struct {
		name string
		in   string
	}{
		{"bad header", "# slotz=10\npu,start,end\n"},
		{"bad fields", "# slots=10\npu,start,end\n1,2\n"},
		{"bad pu", "# slots=10\npu,start,end\n9,0,5\n"},
		{"bad start", "# slots=10\npu,start,end\n0,x,5\n"},
		{"bad end", "# slots=10\npu,start,end\n0,1,y\n"},
		{"invalid intervals", "# slots=10\npu,start,end\n0,5,2\n"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := ReadCSV(strings.NewReader(tc.in), 3); err == nil {
				t.Errorf("%s accepted", tc.name)
			}
		})
	}
}

func TestTraceModelReplaysExactly(t *testing.T) {
	nw, tr := modelFixture(t, 21, 0.3)
	trace := &Trace{PU: make([][]Interval, len(nw.PU)), Slots: 100}
	trace.PU[0] = []Interval{{Start: 2, End: 5}, {Start: 10, End: 11}}
	trace.PU[1] = []Interval{{Start: 4, End: 6}}
	m, err := NewTraceModel(nw, tr, trace)
	if err != nil {
		t.Fatal(err)
	}
	eng := sim.New()
	m.Start(eng)
	slot := sim.FromDuration(nw.Params.Slot)
	expect := func(slotIdx int64, wantActive ...bool) {
		eng.RunUntil(sim.Time(slotIdx)*slot + slot/2)
		for i, want := range wantActive {
			if m.IsActive(i) != want {
				t.Fatalf("slot %d: PU %d active=%v, want %v", slotIdx, i, m.IsActive(i), want)
			}
		}
	}
	expect(0, false, false)
	expect(2, true, false)
	expect(4, true, true)
	expect(5, false, true)
	expect(6, false, false)
	expect(10, true, false)
	expect(11, false, false)
	// Cyclic repetition: slot 102 repeats slot 2.
	expect(102, true, false)
	expect(104, true, true)
}

func TestTraceModelRejectsMismatch(t *testing.T) {
	nw, tr := modelFixture(t, 22, 0.3)
	trace := &Trace{PU: make([][]Interval, len(nw.PU)+3), Slots: 10}
	if _, err := NewTraceModel(nw, tr, trace); err == nil {
		t.Error("PU count mismatch accepted")
	}
	bad := &Trace{PU: make([][]Interval, len(nw.PU)), Slots: 0}
	if _, err := NewTraceModel(nw, tr, bad); err == nil {
		t.Error("invalid trace accepted")
	}
}

func TestTraceModelActiveCount(t *testing.T) {
	nw, tr := modelFixture(t, 23, 0.3)
	trace := GenerateBernoulliTrace(len(nw.PU), 0.4, 200, rng.New(9))
	m, err := NewTraceModel(nw, tr, trace)
	if err != nil {
		t.Fatal(err)
	}
	eng := sim.New()
	m.Start(eng)
	slot := sim.FromDuration(nw.Params.Slot)
	for s := int64(0); s < 400; s += 7 {
		eng.RunUntil(sim.Time(s)*slot + slot/2)
		count := 0
		for i := range nw.PU {
			if m.IsActive(i) {
				count++
			}
		}
		if count != m.ActiveCount() {
			t.Fatalf("slot %d: ActiveCount %d, counted %d", s, m.ActiveCount(), count)
		}
	}
}
