// Package pcr implements the Proper Carrier-sensing Range derivation of the
// paper (Section IV-B, Lemmas 2 and 3): the smallest carrier-sensing range
// R_cs = kappa * r such that any set of simultaneous transmitters with
// pairwise distance >= R_cs is a concurrent set under the physical
// interference model.
//
// Correction applied (documented in DESIGN.md): the paper prints
//
//	c2 = 6 + 6*(sqrt(3)/2)^(-alpha) * (1/(alpha-2) - 1)
//
// justified by "zeta(x) <= 1/(x-1)", which is false (zeta > 1 everywhere on
// x > 1, while 1/(x-1) < 1 for x > 2; the printed c2 even turns negative at
// alpha = 4). The correct bound zeta(x) <= 1 + 1/(x-1) yields
// zeta(alpha-1) - 1 <= 1/(alpha-2) and therefore
//
//	c2 = 6 + 6*(sqrt(3)/2)^(-alpha) * 1/(alpha-2),
//
// which this package implements. TestC2BoundsHexagonInterference verifies
// the corrected constant really upper-bounds the hexagon-packing
// interference sum the proof constructs.
package pcr

import (
	"fmt"
	"math"

	"addcrn/internal/netmodel"
)

// Constants holds every derived quantity of the PCR computation for one
// parameter set; field names follow the paper.
type Constants struct {
	// C1 = P_p / max{P_p, P_s} (Lemma 2).
	C1 float64
	// C2 = 6 + 6*(sqrt(3)/2)^(-alpha)/(alpha-2) (Lemma 2, corrected).
	C2 float64
	// C3 = P_s / max{P_p, P_s} (Lemma 3).
	C3 float64
	// KappaPU is the PU-protection factor (1 + (c2*eta_p/c1)^(1/alpha))*R/r.
	KappaPU float64
	// KappaSU is the SU-success factor 1 + (c2*eta_s/c3)^(1/alpha).
	KappaSU float64
	// Kappa = max(KappaPU, KappaSU) (Equation 16).
	Kappa float64
	// Range is the PCR itself: Kappa * r.
	Range float64
}

// Compute derives the PCR constants for parameters p. It returns an error
// when p violates the model constraints (alpha <= 2 in particular, since c2
// diverges there).
func Compute(p netmodel.Params) (Constants, error) {
	if err := p.Validate(); err != nil {
		return Constants{}, err
	}
	return computeUnchecked(p), nil
}

// MustCompute is Compute for parameter sets known statically valid; it
// panics on invalid input and is intended for tests and examples.
func MustCompute(p netmodel.Params) Constants {
	c, err := Compute(p)
	if err != nil {
		panic(fmt.Sprintf("pcr: %v", err))
	}
	return c
}

func computeUnchecked(p netmodel.Params) Constants {
	maxPower := math.Max(p.PowerPU, p.PowerSU)
	c := Constants{
		C1: p.PowerPU / maxPower,
		C2: C2(p.Alpha),
		C3: p.PowerSU / maxPower,
	}
	etaP := p.EtaPU()
	etaS := p.EtaSU()
	c.KappaPU = (1 + math.Pow(c.C2*etaP/c.C1, 1/p.Alpha)) * p.RadiusPU / p.RadiusSU
	c.KappaSU = 1 + math.Pow(c.C2*etaS/c.C3, 1/p.Alpha)
	c.Kappa = math.Max(c.KappaPU, c.KappaSU)
	c.Range = c.Kappa * p.RadiusSU
	return c
}

// C2 returns the corrected interference-packing constant
// 6 + 6*(sqrt(3)/2)^(-alpha)/(alpha-2) for alpha > 2.
func C2(alpha float64) float64 {
	return 6 + 6*math.Pow(math.Sqrt(3)/2, -alpha)/(alpha-2)
}

// HexagonInterferenceBound returns the proof's layered upper bound on
// sum_{U != S_i} D(U, S_i')^(-alpha) for an R-set with F = R_cs - R:
// c2 * F^(-alpha). Exposed so tests can compare it against explicitly
// constructed hexagon packings.
func HexagonInterferenceBound(alpha, f float64) float64 {
	return C2(alpha) * math.Pow(f, -alpha)
}
