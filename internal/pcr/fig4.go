package pcr

import (
	"fmt"

	"addcrn/internal/netmodel"
)

// Fig4Defaults returns the parameter settings under which the paper plots
// Fig. 4: alpha = 4, P_p = 10, R = 12, eta_p = 10dB, P_s = 10, r = 10,
// eta_s = 10dB. (These differ from the Fig. 6 simulation defaults.)
func Fig4Defaults() netmodel.Params {
	p := netmodel.DefaultParams()
	p.Alpha = 4
	p.PowerPU = 10
	p.RadiusPU = 12
	p.SIRThresholdPUdB = 10
	p.PowerSU = 10
	p.RadiusSU = 10
	p.SIRThresholdSUdB = 10
	return p
}

// SweepVar identifies the x-axis parameter of one Fig. 4 panel.
type SweepVar uint8

// Parameters swept in Fig. 4.
const (
	SweepPowerPU SweepVar = iota + 1
	SweepPowerSU
	SweepEtaPU
	SweepEtaSU
	SweepRadiusPU
	SweepRadiusSU
)

// String implements fmt.Stringer.
func (v SweepVar) String() string {
	switch v {
	case SweepPowerPU:
		return "P_p"
	case SweepPowerSU:
		return "P_s"
	case SweepEtaPU:
		return "eta_p(dB)"
	case SweepEtaSU:
		return "eta_s(dB)"
	case SweepRadiusPU:
		return "R"
	case SweepRadiusSU:
		return "r"
	default:
		return fmt.Sprintf("sweep(%d)", uint8(v))
	}
}

// apply returns base with the swept variable set to x.
func (v SweepVar) apply(base netmodel.Params, x float64) netmodel.Params {
	switch v {
	case SweepPowerPU:
		base.PowerPU = x
	case SweepPowerSU:
		base.PowerSU = x
	case SweepEtaPU:
		base.SIRThresholdPUdB = x
	case SweepEtaSU:
		base.SIRThresholdSUdB = x
	case SweepRadiusPU:
		base.RadiusPU = x
	case SweepRadiusSU:
		base.RadiusSU = x
	}
	return base
}

// Fig4Point is one (x, PCR) sample of a Fig. 4 series.
type Fig4Point struct {
	X     float64
	Alpha float64
	PCR   float64
	Kappa float64
}

// Fig4Series regenerates one Fig. 4 panel: PCR as a function of the swept
// variable, for each path-loss exponent in alphas (the paper uses 3.0 and
// 4.0), all other parameters at base.
func Fig4Series(base netmodel.Params, v SweepVar, xs []float64, alphas []float64) ([][]Fig4Point, error) {
	series := make([][]Fig4Point, 0, len(alphas))
	for _, alpha := range alphas {
		pts := make([]Fig4Point, 0, len(xs))
		for _, x := range xs {
			p := v.apply(base, x)
			p.Alpha = alpha
			c, err := Compute(p)
			if err != nil {
				return nil, fmt.Errorf("pcr: fig4 %v=%v alpha=%v: %w", v, x, alpha, err)
			}
			pts = append(pts, Fig4Point{X: x, Alpha: alpha, PCR: c.Range, Kappa: c.Kappa})
		}
		series = append(series, pts)
	}
	return series, nil
}
