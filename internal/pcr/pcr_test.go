package pcr

import (
	"math"
	"testing"

	"addcrn/internal/geom"
	"addcrn/internal/netmodel"
)

func TestC2Corrected(t *testing.T) {
	// alpha=4: c2 = 6 + 6*(2/sqrt(3))^4 / 2 = 6 + 6*(16/9)/2 = 6 + 16/3.
	want := 6 + 16.0/3
	if got := C2(4); math.Abs(got-want) > 1e-12 {
		t.Errorf("C2(4) = %v, want %v", got, want)
	}
	// The paper's printed (typo) form would be negative here; the
	// corrected constant must always be positive and exceed the first
	// layer's contribution of 6.
	for _, alpha := range []float64{2.1, 2.5, 3, 3.5, 4, 5, 6} {
		if c := C2(alpha); c <= 6 {
			t.Errorf("C2(%v) = %v, want > 6", alpha, c)
		}
	}
}

func TestC2DecreasesInAlpha(t *testing.T) {
	prev := math.Inf(1)
	for alpha := 2.2; alpha <= 6; alpha += 0.2 {
		c := C2(alpha)
		if c >= prev {
			t.Errorf("C2 not strictly decreasing at alpha=%v: %v >= %v", alpha, c, prev)
		}
		prev = c
	}
}

func TestComputeDefaults(t *testing.T) {
	p := Fig4Defaults()
	c, err := Compute(p)
	if err != nil {
		t.Fatal(err)
	}
	if c.C1 != 1 || c.C3 != 1 {
		t.Errorf("equal powers: c1=%v c3=%v, want 1, 1", c.C1, c.C3)
	}
	// kappa = max((1+(c2*eta)^(1/4))*1.2, 1+(c2*eta)^(1/4)) with R/r=1.2.
	eta := math.Pow(10, 1.0)
	base := 1 + math.Pow(C2(4)*eta, 0.25)
	wantKappa := base * 1.2
	if math.Abs(c.Kappa-wantKappa) > 1e-9 {
		t.Errorf("Kappa = %v, want %v", c.Kappa, wantKappa)
	}
	if math.Abs(c.Range-c.Kappa*p.RadiusSU) > 1e-9 {
		t.Errorf("Range = %v, want kappa*r = %v", c.Range, c.Kappa*p.RadiusSU)
	}
}

func TestComputeRejectsInvalid(t *testing.T) {
	p := Fig4Defaults()
	p.Alpha = 2
	if _, err := Compute(p); err == nil {
		t.Error("alpha=2 accepted")
	}
}

func TestMustComputePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustCompute did not panic on invalid params")
		}
	}()
	p := Fig4Defaults()
	p.Alpha = 1
	MustCompute(p)
}

func TestKappaAsymmetricPowers(t *testing.T) {
	p := Fig4Defaults()
	p.PowerPU = 40 // PU louder than SU
	c := MustCompute(p)
	if c.C1 != 1 {
		t.Errorf("c1 = %v, want 1 when P_p is max", c.C1)
	}
	if math.Abs(c.C3-10.0/40) > 1e-12 {
		t.Errorf("c3 = %v, want 0.25", c.C3)
	}
	// Louder PUs mean SU receivers need more protection: kappaSU grows.
	base := MustCompute(Fig4Defaults())
	if c.KappaSU <= base.KappaSU {
		t.Errorf("KappaSU %v did not grow with PU power (base %v)", c.KappaSU, base.KappaSU)
	}
}

func TestRangeMonotoneInThresholds(t *testing.T) {
	// The paper notes PCR is non-decreasing in eta_p and eta_s.
	base := Fig4Defaults()
	prev := 0.0
	for etaDB := 2.0; etaDB <= 14; etaDB += 2 {
		p := base
		p.SIRThresholdPUdB = etaDB
		p.SIRThresholdSUdB = etaDB
		c := MustCompute(p)
		if c.Range < prev {
			t.Errorf("PCR decreased at eta=%vdB: %v < %v", etaDB, c.Range, prev)
		}
		prev = c.Range
	}
}

func TestRangeMonotoneInRadii(t *testing.T) {
	base := Fig4Defaults()
	prev := 0.0
	for r := 6.0; r <= 16; r += 2 {
		p := base
		p.RadiusPU = r
		c := MustCompute(p)
		if c.Range < prev {
			t.Errorf("PCR decreased in R at %v", r)
		}
		prev = c.Range
	}
}

func TestAlphaEffectMatchesPaper(t *testing.T) {
	// Paper (Fig. 4 discussion): the PCR is bigger at alpha=3 than at
	// alpha=4 because weaker path loss spreads interference farther.
	p3, p4 := Fig4Defaults(), Fig4Defaults()
	p3.Alpha = 3
	c3, c4 := MustCompute(p3), MustCompute(p4)
	if c3.Range <= c4.Range {
		t.Errorf("PCR(alpha=3)=%v not larger than PCR(alpha=4)=%v", c3.Range, c4.Range)
	}
}

// TestC2BoundsHexagonInterference verifies the corrected c2 really upper
// bounds the interference sum over the proof's worst-case hexagon packing:
// transmitters on a triangular lattice with spacing exactly R_cs, receiver
// within R of the central transmitter.
func TestC2BoundsHexagonInterference(t *testing.T) {
	for _, alpha := range []float64{2.5, 3, 3.5, 4, 5} {
		for _, rcs := range []float64{20.0, 40, 80} {
			recvR := 10.0 // receiver distance from its transmitter
			f := rcs - recvR
			bound := HexagonInterferenceBound(alpha, f)

			// Build a triangular lattice (hexagon packing) of transmitters
			// around the origin with spacing rcs, 40 layers deep.
			var sum float64
			rx := geom.Point{X: recvR, Y: 0} // worst case: receiver toward the ring
			const layers = 40
			for i := -layers; i <= layers; i++ {
				for j := -layers; j <= layers; j++ {
					if i == 0 && j == 0 {
						continue // the central transmitter is the signal
					}
					// Triangular lattice basis vectors of length rcs.
					x := (float64(i) + float64(j)/2) * rcs
					y := float64(j) * math.Sqrt(3) / 2 * rcs
					sum += math.Pow(geom.Point{X: x, Y: y}.Dist(rx), -alpha)
				}
			}
			if sum > bound {
				t.Errorf("alpha=%v rcs=%v: lattice interference %v exceeds c2 bound %v",
					alpha, rcs, sum, bound)
			}
			// The bound should not be absurdly loose either (within ~300x
			// guards against regressions that inflate c2).
			if bound > sum*300 {
				t.Errorf("alpha=%v rcs=%v: bound %v implausibly loose vs %v", alpha, rcs, bound, sum)
			}
		}
	}
}

func TestFig4Series(t *testing.T) {
	base := Fig4Defaults()
	xs := []float64{5, 10, 15}
	series, err := Fig4Series(base, SweepPowerPU, xs, []float64{3, 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(series) != 2 || len(series[0]) != 3 {
		t.Fatalf("series shape %dx%d", len(series), len(series[0]))
	}
	for ai, alpha := range []float64{3, 4} {
		for i, x := range xs {
			pt := series[ai][i]
			if pt.X != x || pt.Alpha != alpha {
				t.Errorf("point labels wrong: %+v", pt)
			}
			p := base
			p.PowerPU = x
			p.Alpha = alpha
			want := MustCompute(p)
			if pt.PCR != want.Range || pt.Kappa != want.Kappa {
				t.Errorf("series value mismatch at x=%v alpha=%v", x, alpha)
			}
		}
	}
}

func TestFig4SeriesRejectsInvalid(t *testing.T) {
	base := Fig4Defaults()
	if _, err := Fig4Series(base, SweepRadiusSU, []float64{0}, []float64{4}); err == nil {
		t.Error("r=0 accepted")
	}
}

func TestSweepVarApplyAndString(t *testing.T) {
	base := Fig4Defaults()
	tests := []struct {
		v   SweepVar
		get func(netmodel.Params) float64
	}{
		{SweepPowerPU, func(p netmodel.Params) float64 { return p.PowerPU }},
		{SweepPowerSU, func(p netmodel.Params) float64 { return p.PowerSU }},
		{SweepEtaPU, func(p netmodel.Params) float64 { return p.SIRThresholdPUdB }},
		{SweepEtaSU, func(p netmodel.Params) float64 { return p.SIRThresholdSUdB }},
		{SweepRadiusPU, func(p netmodel.Params) float64 { return p.RadiusPU }},
		{SweepRadiusSU, func(p netmodel.Params) float64 { return p.RadiusSU }},
	}
	for _, tt := range tests {
		got := tt.v.apply(base, 42)
		if tt.get(got) != 42 {
			t.Errorf("%v.apply did not set the field", tt.v)
		}
		if tt.v.String() == "" {
			t.Errorf("empty string for %d", tt.v)
		}
	}
	if SweepVar(99).String() == "" {
		t.Error("unknown sweep var has empty string")
	}
}
