package pcr_test

import (
	"fmt"

	"addcrn/internal/pcr"
)

// ExampleCompute derives the Proper Carrier-sensing Range for the paper's
// Fig. 4 default parameters.
func ExampleCompute() {
	params := pcr.Fig4Defaults()
	c, err := pcr.Compute(params)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Printf("kappa = %.3f\n", c.Kappa)
	fmt.Printf("PCR   = %.2f m\n", c.Range)
	// Output:
	// kappa = 5.115
	// PCR   = 51.15 m
}

// ExampleC2 shows the corrected interference-packing constant (the paper's
// printed formula has a sign typo; see DESIGN.md).
func ExampleC2() {
	fmt.Printf("c2(alpha=4) = %.4f\n", pcr.C2(4))
	// Output:
	// c2(alpha=4) = 11.3333
}

// ExampleFig4Series regenerates two points of a Fig. 4 panel.
func ExampleFig4Series() {
	series, err := pcr.Fig4Series(pcr.Fig4Defaults(), pcr.SweepEtaPU,
		[]float64{8, 12}, []float64{4})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	for _, pt := range series[0] {
		fmt.Printf("eta_p=%gdB -> PCR %.2f m\n", pt.X, pt.PCR)
	}
	// Output:
	// eta_p=8dB -> PCR 46.90 m
	// eta_p=12dB -> PCR 55.93 m
}
