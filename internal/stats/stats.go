// Package stats provides the small statistical toolkit the experiment
// harness needs: summary statistics with confidence intervals, Jain's
// fairness index, and histogram building.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Summary describes a sample of float64 observations.
type Summary struct {
	N      int
	Mean   float64
	StdDev float64 // sample standard deviation (n-1 denominator)
	Min    float64
	Max    float64
	Median float64
}

// Summarize computes a Summary of xs. It returns a zero Summary for an
// empty sample.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	s := Summary{
		N:   len(xs),
		Min: math.Inf(1),
		Max: math.Inf(-1),
	}
	var sum float64
	for _, x := range xs {
		sum += x
		if x < s.Min {
			s.Min = x
		}
		if x > s.Max {
			s.Max = x
		}
	}
	s.Mean = sum / float64(s.N)
	if s.N > 1 {
		var ss float64
		for _, x := range xs {
			d := x - s.Mean
			ss += d * d
		}
		s.StdDev = math.Sqrt(ss / float64(s.N-1))
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	mid := len(sorted) / 2
	if len(sorted)%2 == 1 {
		s.Median = sorted[mid]
	} else {
		s.Median = (sorted[mid-1] + sorted[mid]) / 2
	}
	return s
}

// CI95 returns the half-width of the 95% confidence interval of the mean
// using the normal approximation (adequate at the 10-repetition level the
// paper uses; we report it as indicative, not inferential).
func (s Summary) CI95() float64 {
	if s.N < 2 {
		return 0
	}
	return 1.96 * s.StdDev / math.Sqrt(float64(s.N))
}

// String implements fmt.Stringer.
func (s Summary) String() string {
	return fmt.Sprintf("n=%d mean=%.4g ±%.2g sd=%.4g min=%.4g med=%.4g max=%.4g",
		s.N, s.Mean, s.CI95(), s.StdDev, s.Min, s.Median, s.Max)
}

// JainIndex computes Jain's fairness index of xs:
// (sum x)^2 / (n * sum x^2). It is 1 for perfectly equal allocations and
// 1/n in the most unfair case. Returns 0 for empty or all-zero samples.
func JainIndex(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum, sumSq float64
	for _, x := range xs {
		sum += x
		sumSq += x * x
	}
	if sumSq == 0 {
		return 0
	}
	return sum * sum / (float64(len(xs)) * sumSq)
}

// Histogram counts xs into nbins equal-width bins spanning [lo, hi]; values
// outside the range clamp into the boundary bins.
func Histogram(xs []float64, lo, hi float64, nbins int) []int {
	if nbins <= 0 || hi <= lo {
		return nil
	}
	bins := make([]int, nbins)
	width := (hi - lo) / float64(nbins)
	for _, x := range xs {
		i := int((x - lo) / width)
		if i < 0 {
			i = 0
		}
		if i >= nbins {
			i = nbins - 1
		}
		bins[i]++
	}
	return bins
}

// Ratio returns a/b, or NaN when b is zero; convenience for delay-ratio
// reporting (Coolest vs ADDC).
func Ratio(a, b float64) float64 {
	if b == 0 {
		return math.NaN()
	}
	return a / b
}
