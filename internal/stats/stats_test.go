package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestSummarizeEmpty(t *testing.T) {
	s := Summarize(nil)
	if s.N != 0 || s.Mean != 0 {
		t.Errorf("empty summary: %+v", s)
	}
	if s.CI95() != 0 {
		t.Errorf("empty CI = %v", s.CI95())
	}
}

func TestSummarizeSingle(t *testing.T) {
	s := Summarize([]float64{5})
	if s.N != 1 || s.Mean != 5 || s.Min != 5 || s.Max != 5 || s.Median != 5 {
		t.Errorf("single summary: %+v", s)
	}
	if s.StdDev != 0 || s.CI95() != 0 {
		t.Errorf("single-sample spread: sd=%v ci=%v", s.StdDev, s.CI95())
	}
}

func TestSummarizeKnown(t *testing.T) {
	s := Summarize([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if math.Abs(s.Mean-5) > 1e-12 {
		t.Errorf("mean = %v", s.Mean)
	}
	// Sample stddev with n-1: sqrt(32/7).
	if math.Abs(s.StdDev-math.Sqrt(32.0/7)) > 1e-12 {
		t.Errorf("stddev = %v", s.StdDev)
	}
	if s.Min != 2 || s.Max != 9 {
		t.Errorf("min/max = %v/%v", s.Min, s.Max)
	}
	if math.Abs(s.Median-4.5) > 1e-12 {
		t.Errorf("median = %v", s.Median)
	}
}

func TestSummarizeOddMedian(t *testing.T) {
	s := Summarize([]float64{9, 1, 5})
	if s.Median != 5 {
		t.Errorf("median = %v", s.Median)
	}
}

func TestSummarizeDoesNotMutateInput(t *testing.T) {
	xs := []float64{3, 1, 2}
	Summarize(xs)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Errorf("input reordered: %v", xs)
	}
}

func TestSummaryInvariants(t *testing.T) {
	f := func(raw []float64) bool {
		xs := make([]float64, 0, len(raw))
		for _, x := range raw {
			if !math.IsNaN(x) && !math.IsInf(x, 0) {
				xs = append(xs, math.Mod(x, 1e9))
			}
		}
		if len(xs) == 0 {
			return true
		}
		s := Summarize(xs)
		return s.Min <= s.Median && s.Median <= s.Max &&
			s.Min <= s.Mean && s.Mean <= s.Max && s.StdDev >= 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCI95ShrinksWithN(t *testing.T) {
	small := Summary{N: 4, StdDev: 2}
	large := Summary{N: 100, StdDev: 2}
	if small.CI95() <= large.CI95() {
		t.Errorf("CI did not shrink: %v vs %v", small.CI95(), large.CI95())
	}
}

func TestJainIndex(t *testing.T) {
	if got := JainIndex(nil); got != 0 {
		t.Errorf("empty Jain = %v", got)
	}
	if got := JainIndex([]float64{0, 0}); got != 0 {
		t.Errorf("all-zero Jain = %v", got)
	}
	if got := JainIndex([]float64{3, 3, 3}); math.Abs(got-1) > 1e-12 {
		t.Errorf("equal Jain = %v, want 1", got)
	}
	// One user hogs everything: 1/n.
	if got := JainIndex([]float64{10, 0, 0, 0}); math.Abs(got-0.25) > 1e-12 {
		t.Errorf("monopoly Jain = %v, want 0.25", got)
	}
}

func TestJainIndexRange(t *testing.T) {
	f := func(raw []float64) bool {
		xs := make([]float64, 0, len(raw))
		for _, x := range raw {
			if !math.IsNaN(x) && !math.IsInf(x, 0) {
				xs = append(xs, math.Abs(math.Mod(x, 1e6)))
			}
		}
		if len(xs) == 0 {
			return true
		}
		j := JainIndex(xs)
		return j >= 0 && j <= 1+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestHistogram(t *testing.T) {
	bins := Histogram([]float64{0.5, 1.5, 1.6, 2.5, -5, 99}, 0, 3, 3)
	// -5 clamps into bin 0; 99 clamps into bin 2.
	if bins[0] != 2 || bins[1] != 2 || bins[2] != 2 {
		t.Errorf("bins = %v", bins)
	}
	if Histogram(nil, 0, 1, 0) != nil {
		t.Error("zero bins should return nil")
	}
	if Histogram(nil, 1, 0, 3) != nil {
		t.Error("inverted range should return nil")
	}
}

func TestRatio(t *testing.T) {
	if got := Ratio(6, 3); got != 2 {
		t.Errorf("Ratio = %v", got)
	}
	if got := Ratio(1, 0); !math.IsNaN(got) {
		t.Errorf("Ratio by zero = %v, want NaN", got)
	}
}

func TestSummarizeTable(t *testing.T) {
	cases := []struct {
		name string
		xs   []float64
		want Summary
	}{
		{"nil", nil, Summary{}},
		{"empty", []float64{}, Summary{}},
		{"single", []float64{7}, Summary{N: 1, Mean: 7, Min: 7, Max: 7, Median: 7}},
		{"single-zero", []float64{0}, Summary{N: 1}},
		{"single-negative", []float64{-3}, Summary{N: 1, Mean: -3, Min: -3, Max: -3, Median: -3}},
		{"pair", []float64{1, 3}, Summary{N: 2, Mean: 2, StdDev: math.Sqrt2, Min: 1, Max: 3, Median: 2}},
		{"constant", []float64{4, 4, 4, 4}, Summary{N: 4, Mean: 4, Min: 4, Max: 4, Median: 4}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got := Summarize(tc.xs)
			if got.N != tc.want.N || math.Abs(got.Mean-tc.want.Mean) > 1e-12 ||
				math.Abs(got.StdDev-tc.want.StdDev) > 1e-12 ||
				got.Min != tc.want.Min || got.Max != tc.want.Max ||
				math.Abs(got.Median-tc.want.Median) > 1e-12 {
				t.Errorf("Summarize(%v) = %+v, want %+v", tc.xs, got, tc.want)
			}
		})
	}
}

func TestJainIndexTable(t *testing.T) {
	cases := []struct {
		name string
		xs   []float64
		want float64
	}{
		{"nil", nil, 0},
		{"empty", []float64{}, 0},
		{"single", []float64{5}, 1},
		{"single-zero", []float64{0}, 0},
		{"two-equal", []float64{2, 2}, 1},
		{"two-skewed", []float64{1, 3}, 16.0 / 20},
		{"monopoly-of-5", []float64{7, 0, 0, 0, 0}, 0.2},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := JainIndex(tc.xs); math.Abs(got-tc.want) > 1e-12 {
				t.Errorf("JainIndex(%v) = %v, want %v", tc.xs, got, tc.want)
			}
		})
	}
}

func TestHistogramTable(t *testing.T) {
	cases := []struct {
		name   string
		xs     []float64
		lo, hi float64
		nbins  int
		want   []int
	}{
		{"empty-input", nil, 0, 1, 2, []int{0, 0}},
		{"zero-bins", []float64{1}, 0, 1, 0, nil},
		{"negative-bins", []float64{1}, 0, 1, -3, nil},
		{"inverted-range", []float64{1}, 1, 0, 2, nil},
		{"degenerate-range", []float64{1}, 1, 1, 2, nil},
		{"single-value", []float64{0.4}, 0, 1, 2, []int{1, 0}},
		{"boundary-value", []float64{0.5}, 0, 1, 2, []int{0, 1}},
		{"boundary-clamps", []float64{-1, 2}, 0, 1, 2, []int{1, 1}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got := Histogram(tc.xs, tc.lo, tc.hi, tc.nbins)
			if len(got) != len(tc.want) {
				t.Fatalf("Histogram = %v, want %v", got, tc.want)
			}
			for i := range got {
				if got[i] != tc.want[i] {
					t.Fatalf("Histogram = %v, want %v", got, tc.want)
				}
			}
		})
	}
}

func TestSummaryString(t *testing.T) {
	if s := Summarize([]float64{1, 2, 3}).String(); s == "" {
		t.Error("empty summary string")
	}
}
