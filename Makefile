# Verification tiers. `make check` is the fast pre-merge gate; `make race`
# runs the full suite under the race detector (the worker-pool sweeps in
# internal/experiment are the concurrent code it guards). `make bench` runs
# the paper-shaped benchmark suite once and records it as BENCH_addc.json
# (benchmark name → ns/op, delay-slots, ... metrics).

GO ?= go

.PHONY: check build vet test race bench

check: vet build test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -run '^$$' -bench . -benchtime 1x -short ./... | $(GO) run ./cmd/addc-benchjson -out BENCH_addc.json
