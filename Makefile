# Verification tiers. `make check` is the fast pre-merge gate; `make race`
# runs the full suite under the race detector (the worker-pool sweeps in
# internal/experiment are the concurrent code it guards). `make guard` runs
# the suite with runtime invariant guards force-enabled (ADDC_GUARD=1):
# every simulation in every test then asserts concurrent-set separation,
# tree integrity and packet conservation. `make vuln` audits dependencies
# with govulncheck when it is installed (skipped gracefully otherwise —
# the module is stdlib-only). `make bench` runs the paper-shaped benchmark
# suite once and records it as BENCH_addc.json (benchmark name → ns/op,
# delay-slots, ... metrics).

GO ?= go

.PHONY: check build vet test race guard vuln bench

check: vet build test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

guard:
	ADDC_GUARD=1 $(GO) test -count=1 ./...

vuln:
	@if command -v govulncheck >/dev/null 2>&1; then \
		govulncheck ./...; \
	else \
		echo "govulncheck not installed; skipping (go install golang.org/x/vuln/cmd/govulncheck@latest)"; \
	fi

bench:
	$(GO) test -run '^$$' -bench . -benchtime 1x -short ./... | $(GO) run ./cmd/addc-benchjson -out BENCH_addc.json
