# Verification tiers. `make check` is the fast pre-merge gate; `make race`
# runs the full suite under the race detector (the worker-pool sweeps in
# internal/experiment are the concurrent code it guards).

GO ?= go

.PHONY: check build vet test race

check: vet build test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...
