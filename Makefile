# Verification tiers. `make check` is the fast pre-merge gate; `make race`
# runs the full suite under the race detector (the worker-pool sweeps in
# internal/experiment are the concurrent code it guards). `make guard` runs
# the suite with runtime invariant guards force-enabled (ADDC_GUARD=1):
# every simulation in every test then asserts concurrent-set separation,
# tree integrity and packet conservation. `make vuln` audits dependencies
# with govulncheck when it is installed (skipped gracefully otherwise —
# the module is stdlib-only). `make bench` runs the paper-shaped benchmark
# suite and records it as BENCH_addc.json (benchmark name → ns/op, B/op,
# allocs/op, delay-slots, ... metrics); three reps per benchmark, keeping
# the fastest, so transient machine load cannot inflate the record. `make
# bench-diff` re-runs the suite the same way and diffs it against the
# committed BENCH_addc.json, failing on a >20% ns/op or >30% allocs/op
# regression in any benchmark — the local perf gate. `make
# profile` captures cpu.prof + mem.prof for BenchmarkCollectBare along with
# the test binary; inspect with `go tool pprof addcrn.test cpu.prof`.

GO ?= go

.PHONY: check build vet test race guard vuln bench bench-diff bench-parallel profile serve-smoke obs-smoke shard-chaos

check: vet build test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

guard:
	ADDC_GUARD=1 $(GO) test -count=1 ./...

# serve-smoke boots the addc-serve daemon, drives it over HTTP, requires
# its CSV result to match the addc-experiments CLI byte for byte, scrapes
# /metrics mid-job (required families present, job counters monotone),
# checks lifecycle spans on the events feed, structured JSON logs, and
# pprof on the debug listener, and requires a clean graceful drain on
# SIGTERM. obs-smoke is the observability-focused alias CI uses.
serve-smoke:
	./scripts/serve-smoke.sh

obs-smoke: serve-smoke

# shard-chaos runs the kill-resume chaos harness: shard worker processes
# are SIGKILLed mid-sweep, resumed from their journals, and the merged
# sharded output must be byte-identical to an uninterrupted unsharded run.
shard-chaos:
	./scripts/shard-chaos.sh

vuln:
	@if command -v govulncheck >/dev/null 2>&1; then \
		govulncheck ./...; \
	else \
		echo "govulncheck not installed; skipping (go install golang.org/x/vuln/cmd/govulncheck@latest)"; \
	fi

bench:
	$(GO) test -run '^$$' -bench . -benchtime 1x -benchmem -short -count=3 ./... | $(GO) run ./cmd/addc-benchjson -out BENCH_addc.json

bench-diff:
	$(GO) test -run '^$$' -bench . -benchtime 1x -benchmem -short -count=3 ./... | $(GO) run ./cmd/addc-benchjson -out '' -baseline BENCH_addc.json

# bench-parallel runs only the multi-core scaling family (scalar and
# batch16 at 1/2/4/8 cores) and prints the scaling-efficiency table without
# touching BENCH_addc.json.
bench-parallel:
	$(GO) test -run '^$$' -bench 'BenchmarkSweepParallel' -benchtime 1x -benchmem -count=3 . | $(GO) run ./cmd/addc-benchjson -out ''

# profile captures cpu+mem profiles of the single-run fast path, and
# mutex+block profiles of the parallel sweep at 4 workers — the contention
# evidence DESIGN.md §9.3 is written from. Inspect with:
#   go tool pprof addcrn.test cpu.prof
#   go tool pprof addcrn.test mutex.prof   (or block.prof)
profile:
	$(GO) test -run '^$$' -bench 'BenchmarkCollectBare$$' -benchtime 100x -cpuprofile cpu.prof -memprofile mem.prof -o addcrn.test .
	$(GO) test -run '^$$' -bench 'BenchmarkSweepParallel/scalar-c4$$' -benchtime 10x -mutexprofile mutex.prof -blockprofile block.prof -o addcrn.test .
	@echo "wrote cpu.prof, mem.prof, mutex.prof, block.prof, addcrn.test; inspect with: go tool pprof addcrn.test cpu.prof"
