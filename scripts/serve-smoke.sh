#!/usr/bin/env bash
# Smoke test for the addc-serve daemon: boot it on a temp state dir, submit
# a small figure job over HTTP, wait for completion, and require the CSV
# result to match the addc-experiments CLI byte for byte — the service is a
# deployment of the same deterministic engine, not a different code path.
# Finally SIGTERM the daemon and require a clean (exit 0) graceful drain.
set -euo pipefail
cd "$(dirname "$0")/.."

PORT="${PORT:-8377}"
FIG=6a
REPS=2
SEED=3

workdir=$(mktemp -d)
pid=""
trap '[ -n "$pid" ] && kill "$pid" 2>/dev/null; rm -rf "$workdir"' EXIT

go build -o "$workdir/addc-serve" ./cmd/addc-serve
"$workdir/addc-serve" -addr "127.0.0.1:$PORT" -state "$workdir/state" &
pid=$!

base="http://127.0.0.1:$PORT"
up=""
for _ in $(seq 1 50); do
    if curl -fsS "$base/healthz" >/dev/null 2>&1; then up=1; break; fi
    sleep 0.2
done
[ -n "$up" ] || { echo "daemon never became healthy"; exit 1; }
curl -fsS "$base/readyz" >/dev/null

id=$(curl -fsS "$base/v1/jobs" \
        -d "{\"figure\":\"$FIG\",\"reps\":$REPS,\"seed\":$SEED}" |
    sed -n 's/.*"id": *"\([^"]*\)".*/\1/p')
[ -n "$id" ] || { echo "submission returned no job id"; exit 1; }
echo "submitted $id (fig $FIG, reps $REPS, seed $SEED)"

state=""
for _ in $(seq 1 300); do
    state=$(curl -fsS "$base/v1/jobs/$id" | sed -n 's/.*"state": *"\([^"]*\)".*/\1/p')
    case "$state" in
    done) break ;;
    failed | deadline | canceled)
        echo "job settled in '$state':"
        curl -fsS "$base/v1/jobs/$id"
        exit 1
        ;;
    esac
    sleep 1
done
[ "$state" = done ] || { echo "job stuck in '$state'"; exit 1; }

curl -fsS "$base/v1/jobs/$id/result?format=csv" >"$workdir/serve.csv"
# The CLI prefixes its CSV with a "# fig <id>" banner line; strip it.
go run ./cmd/addc-experiments -fig "$FIG" -reps "$REPS" -seed "$SEED" -csv |
    tail -n +2 >"$workdir/cli.csv"
cmp "$workdir/serve.csv" "$workdir/cli.csv"
echo "service CSV matches the CLI byte for byte"

kill -TERM "$pid"
wait "$pid"
pid=""
echo "daemon drained cleanly on SIGTERM"
