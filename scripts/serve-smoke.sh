#!/usr/bin/env bash
# Smoke test for the addc-serve daemon: boot it on a temp state dir, submit
# a small figure job over HTTP, wait for completion, and require the CSV
# result to match the addc-experiments CLI byte for byte — the service is a
# deployment of the same deterministic engine, not a different code path.
# Along the way, exercise the observability surface: scrape /metrics
# mid-job and after, require the Prometheus families the dashboards depend
# on to be present and the job counters to advance monotonically, require
# lifecycle spans on the events feed, and require pprof on the opt-in debug
# listener. Finally SIGTERM the daemon and require a clean (exit 0)
# graceful drain.
set -euo pipefail
cd "$(dirname "$0")/.."

PORT="${PORT:-8377}"
DEBUG_PORT="${DEBUG_PORT:-8378}"
FIG=6a
REPS=2
SEED=3

workdir=$(mktemp -d)
pid=""
trap '[ -n "$pid" ] && kill "$pid" 2>/dev/null; rm -rf "$workdir"' EXIT

go build -o "$workdir/addc-serve" ./cmd/addc-serve
"$workdir/addc-serve" -addr "127.0.0.1:$PORT" -state "$workdir/state" \
    -log-format json -debug-addr "127.0.0.1:$DEBUG_PORT" \
    2>"$workdir/daemon.log" &
pid=$!

base="http://127.0.0.1:$PORT"
up=""
for _ in $(seq 1 50); do
    if curl -fsS "$base/healthz" >/dev/null 2>&1; then up=1; break; fi
    sleep 0.2
done
[ -n "$up" ] || { echo "daemon never became healthy"; cat "$workdir/daemon.log"; exit 1; }
curl -fsS "$base/readyz" >/dev/null

# counter_value <file> <family>: the value of an unlabeled counter sample.
counter_value() {
    awk -v m="$2" '$1 == m { print $2 }' "$1"
}

# require_families <file>: every family a dashboard joins on must be
# declared with a TYPE line; absent families break scrapes silently.
require_families() {
    for fam in \
        addc_build_info \
        addc_jobs_submitted_total addc_jobs_completed_total \
        addc_jobs_failed_total addc_jobs_interrupted_total \
        addc_jobs_deadline_total addc_job_retries_total \
        addc_shards_spawned_total addc_shards_completed_total \
        addc_shards_failed_total addc_shard_reexecutions_total \
        addc_jobs_rejected_total addc_jobs_state \
        addc_queue_depth addc_queue_capacity \
        addc_workers addc_workers_busy addc_worker_utilization \
        addc_topo_cache_hits_total addc_topo_cache_misses_total \
        addc_workspace_pool_gets_total addc_workspace_pool_reuses_total \
        addc_job_queue_wait_seconds addc_job_execution_seconds \
        addc_job_duration_seconds; do
        grep -q "^# TYPE $fam " "$1" ||
            { echo "scrape $1 is missing family $fam"; exit 1; }
    done
}

curl -fsS "$base/metrics" >"$workdir/scrape0.txt"
require_families "$workdir/scrape0.txt"
submitted0=$(counter_value "$workdir/scrape0.txt" addc_jobs_submitted_total)
echo "/metrics exposes all required families on a fresh daemon"

id=$(curl -fsS "$base/v1/jobs" \
        -d "{\"figure\":\"$FIG\",\"reps\":$REPS,\"seed\":$SEED}" |
    sed -n 's/.*"id": *"\([^"]*\)".*/\1/p')
[ -n "$id" ] || { echo "submission returned no job id"; exit 1; }
echo "submitted $id (fig $FIG, reps $REPS, seed $SEED)"

# Mid-job scrape: families still present, the submission already counted.
curl -fsS "$base/metrics" >"$workdir/scrape1.txt"
require_families "$workdir/scrape1.txt"
submitted1=$(counter_value "$workdir/scrape1.txt" addc_jobs_submitted_total)
[ "$submitted1" -eq $((submitted0 + 1)) ] ||
    { echo "submitted counter $submitted0 -> $submitted1, want +1"; exit 1; }

state=""
for _ in $(seq 1 300); do
    state=$(curl -fsS "$base/v1/jobs/$id" | sed -n 's/.*"state": *"\([^"]*\)".*/\1/p')
    case "$state" in
    done) break ;;
    failed | deadline | canceled)
        echo "job settled in '$state':"
        curl -fsS "$base/v1/jobs/$id"
        exit 1
        ;;
    esac
    sleep 1
done
[ "$state" = done ] || { echo "job stuck in '$state'"; exit 1; }

# Final scrape: counters only ever go up, and the completion was observed
# in the counter and all three latency histograms.
curl -fsS "$base/metrics" >"$workdir/scrape2.txt"
require_families "$workdir/scrape2.txt"
submitted2=$(counter_value "$workdir/scrape2.txt" addc_jobs_submitted_total)
completed2=$(counter_value "$workdir/scrape2.txt" addc_jobs_completed_total)
[ "$submitted2" -ge "$submitted1" ] ||
    { echo "submitted counter went backwards: $submitted1 -> $submitted2"; exit 1; }
[ "$completed2" -ge 1 ] || { echo "completed counter is $completed2 after a done job"; exit 1; }
for hist in addc_job_queue_wait_seconds addc_job_execution_seconds addc_job_duration_seconds; do
    n=$(counter_value "$workdir/scrape2.txt" "${hist}_count")
    [ "${n%%.*}" -ge 1 ] || { echo "${hist}_count is $n after a done job"; exit 1; }
done
echo "/metrics job counters advanced monotonically and latencies were observed"

# The events feed carries the lifecycle span timeline alongside the journal.
curl -fsS "$base/v1/jobs/$id/events" >"$workdir/events.jsonl"
grep -q '"record":"span"' "$workdir/events.jsonl" ||
    { echo "events feed carries no lifecycle spans"; exit 1; }
grep -q '"event":"done"' "$workdir/events.jsonl" ||
    { echo "events feed is missing the terminal span"; exit 1; }
echo "events feed interleaves lifecycle spans with the journal"

# The deprecated JSON view still works, and pprof answers on the debug
# listener only.
curl -fsS "$base/statsz" | grep -q '"submitted"' ||
    { echo "/statsz lost its JSON stats"; exit 1; }
curl -fsS "http://127.0.0.1:$DEBUG_PORT/debug/pprof/" >/dev/null ||
    { echo "pprof not serving on the debug listener"; exit 1; }
if curl -fsS "$base/debug/pprof/" >/dev/null 2>&1; then
    echo "pprof leaked onto the public API listener"
    exit 1
fi
echo "statsz and pprof endpoints behave"

curl -fsS "$base/v1/jobs/$id/result?format=csv" >"$workdir/serve.csv"
# The CLI prefixes its CSV with a "# fig <id>" banner line; strip it.
go run ./cmd/addc-experiments -fig "$FIG" -reps "$REPS" -seed "$SEED" -csv |
    tail -n +2 >"$workdir/cli.csv"
cmp "$workdir/serve.csv" "$workdir/cli.csv"
echo "service CSV matches the CLI byte for byte"

# Worker-pool parallelism: with two jobs in flight the busy-workers gauge
# must reach 2 — the daemon boots with two workers by default, and a
# regression that serializes the pool (a stray lock, a single-worker
# fallback) would show exactly here while every single-job check above
# still passes.
idp1=$(curl -fsS "$base/v1/jobs" -d "{\"figure\":\"$FIG\",\"reps\":6,\"seed\":41}" |
    sed -n 's/.*"id": *"\([^"]*\)".*/\1/p')
idp2=$(curl -fsS "$base/v1/jobs" -d "{\"figure\":\"$FIG\",\"reps\":6,\"seed\":42}" |
    sed -n 's/.*"id": *"\([^"]*\)".*/\1/p')
[ -n "$idp1" ] && [ -n "$idp2" ] || { echo "concurrent submissions returned no ids"; exit 1; }
peak_busy=0
for _ in $(seq 1 200); do
    busy=$(curl -fsS "$base/metrics" | awk '$1 == "addc_workers_busy" { print int($2) }')
    [ -n "$busy" ] && [ "$busy" -gt "$peak_busy" ] && peak_busy=$busy
    [ "$peak_busy" -ge 2 ] && break
    sleep 0.05
done
[ "$peak_busy" -ge 2 ] ||
    { echo "addc_workers_busy peaked at $peak_busy with two concurrent jobs; worker pool is serialized"; exit 1; }
echo "worker pool ran both concurrent jobs in parallel (busy peak $peak_busy)"
for jid in "$idp1" "$idp2"; do
    state=""
    for _ in $(seq 1 300); do
        state=$(curl -fsS "$base/v1/jobs/$jid" | sed -n 's/.*"state": *"\([^"]*\)".*/\1/p')
        case "$state" in done | failed | deadline | canceled) break ;; esac
        sleep 1
    done
    [ "$state" = done ] || { echo "concurrent job $jid settled in '$state'"; exit 1; }
done

kill -TERM "$pid"
wait "$pid"
pid=""
# Structured logging: every line the daemon wrote is JSON (we booted with
# -log-format json), and the job's lifecycle made it into the log.
if command -v jq >/dev/null 2>&1; then
    jq -e . >/dev/null 2>&1 <"$workdir/daemon.log" ||
        { echo "daemon log is not clean JSONL:"; cat "$workdir/daemon.log"; exit 1; }
fi
grep -q '"msg":"job admitted"' "$workdir/daemon.log" ||
    { echo "daemon log is missing the admission line"; cat "$workdir/daemon.log"; exit 1; }
grep -q "\"job_id\":\"$id\"" "$workdir/daemon.log" ||
    { echo "daemon log lines do not carry job_id"; cat "$workdir/daemon.log"; exit 1; }
echo "daemon logs are structured JSON with job_id attribution"
echo "daemon drained cleanly on SIGTERM"
