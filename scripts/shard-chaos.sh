#!/usr/bin/env bash
# Kill-resume chaos harness for sharded sweeps: run a small fig-6c sweep
# unsharded to get the reference journal and CSV, then run the same sweep
# as K shard worker processes while SIGKILLing each worker mid-sweep (a
# real, uncooperative process death — no flush, no unwind), resuming every
# killed worker from its journal until the shard completes, merging, and
# requiring the merged journal AND the merged CSV to be byte-identical to
# the uninterrupted unsharded run. Shard workers run with -flush-batch 1 so
# a kill can lose at most the repetition in flight.
#
# The Go test suite pins the same contract in-process
# (internal/experiment's equivalence tests, cmd/addc-experiments'
# TestKillResumeMergeMatchesUnsharded); this script is the end-to-end
# variant against the installed binary, with repeated kill rounds.
set -euo pipefail
cd "$(dirname "$0")/.."

SHARDS="${SHARDS:-3}"
KILL_ROUNDS="${KILL_ROUNDS:-3}"   # kill+resume cycles per shard before letting it finish
FIG=6c
XS=0.1,0.2
REPS=6
SEED=7
COMMON=(-fig "$FIG" -xs "$XS" -reps "$REPS" -seed "$SEED"
        -num-su 80 -area 55 -num-pu 3 -max-virtual 30m
        -workers 1 -flush-batch 1)

workdir=$(mktemp -d)
trap 'rm -rf "$workdir"' EXIT

go build -o "$workdir/addc-experiments" ./cmd/addc-experiments
bin="$workdir/addc-experiments"

echo "== reference: uninterrupted unsharded run"
"$bin" "${COMMON[@]}" -checkpoint "$workdir/reference.jsonl" -csv \
    >"$workdir/reference.csv"
[ -s "$workdir/reference.jsonl" ] || { echo "reference journaled nothing"; exit 1; }

# run_shard_with_kills <i>: run shard i/K, SIGKILLing it mid-sweep
# KILL_ROUNDS times (each next round resumes from the journal), then let a
# final resume run to completion.
run_shard_with_kills() {
    local i=$1 round pid journal
    journal="$workdir/cp.shard-$i-of-$SHARDS.jsonl"
    for round in $(seq 1 "$KILL_ROUNDS"); do
        local args=("${COMMON[@]}" -checkpoint "$workdir/cp.jsonl" -shard "$i/$SHARDS")
        [ "$round" -gt 1 ] && args+=(-resume)
        "$bin" "${args[@]}" >/dev/null 2>>"$workdir/shard-$i.log" &
        pid=$!
        # Kill as soon as the journal holds one more line than it started
        # with; if the worker finishes first, that is a legal outcome too.
        local want=2
        [ -f "$journal" ] && want=$(($(wc -l <"$journal") + 1))
        for _ in $(seq 1 200); do
            if ! kill -0 "$pid" 2>/dev/null; then break; fi
            if [ -f "$journal" ] && [ "$(wc -l <"$journal")" -ge "$want" ]; then
                if kill -9 "$pid" 2>/dev/null; then
                    echo "round $round: SIGKILL" >>"$workdir/kills-$i.log"
                fi
                break
            fi
            sleep 0.01
        done
        wait "$pid" 2>/dev/null || true
    done
    # Final resume: must complete cleanly.
    "$bin" "${COMMON[@]}" -checkpoint "$workdir/cp.jsonl" -shard "$i/$SHARDS" -resume \
        >/dev/null 2>>"$workdir/shard-$i.log" \
        || { echo "shard $i/$SHARDS failed to resume to completion"; cat "$workdir/shard-$i.log"; exit 1; }
}

echo "== chaos: $SHARDS shard workers, $KILL_ROUNDS SIGKILL rounds each"
for i in $(seq 1 "$SHARDS"); do
    run_shard_with_kills "$i" &
done
wait

echo "== merge"
"$bin" "${COMMON[@]}" -checkpoint "$workdir/cp.jsonl" -merge -csv \
    >"$workdir/merged.csv" 2>"$workdir/merge.log" \
    || { echo "merge failed"; cat "$workdir/merge.log"; exit 1; }

cmp "$workdir/cp.jsonl" "$workdir/reference.jsonl" \
    || { echo "FAIL: merged journal differs from uninterrupted unsharded journal"; exit 1; }
cmp "$workdir/merged.csv" "$workdir/reference.csv" \
    || { echo "FAIL: merged CSV differs from uninterrupted unsharded CSV"; exit 1; }

kills=$(cat "$workdir"/kills-*.log 2>/dev/null | wc -l)
echo "shard-chaos: $kills SIGKILLs landed mid-sweep; merged output byte-identical to the uninterrupted run"
if [ "$kills" -eq 0 ]; then
    echo "shard-chaos: WARNING: every worker finished before its kill; rerun or raise REPS for real chaos"
fi
echo "shard-chaos: OK"
