#!/usr/bin/env bash
# Kill-resume chaos harness for sharded sweeps: run a small fig-6c sweep
# unsharded to get the reference journal and CSV, then run the same sweep
# as K shard worker processes while SIGKILLing each worker mid-sweep (a
# real, uncooperative process death — no flush, no unwind), resuming every
# killed worker from its journal until the shard completes, merging, and
# requiring the merged journal AND the merged CSV to be byte-identical to
# the uninterrupted unsharded run. Shard workers run with -flush-batch 1 so
# a kill can lose at most the repetition in flight.
#
# The whole gauntlet runs twice: once on the scalar engine and once with
# -batch 4 (the lane-batched engine, whose journals carry their own grid
# hash — each round compares against a reference produced with the same
# flags). A kill therefore also lands mid-block, exercising per-lane
# checkpoint granularity under real process death.
#
# The Go test suite pins the same contract in-process
# (internal/experiment's equivalence tests, cmd/addc-experiments'
# TestKillResumeMergeMatchesUnsharded); this script is the end-to-end
# variant against the installed binary, with repeated kill rounds.
set -euo pipefail
cd "$(dirname "$0")/.."

SHARDS="${SHARDS:-3}"
KILL_ROUNDS="${KILL_ROUNDS:-3}"   # kill+resume cycles per shard before letting it finish
FIG=6c
XS=0.1,0.2
REPS=6
SEED=7
COMMON=(-fig "$FIG" -xs "$XS" -reps "$REPS" -seed "$SEED"
        -num-su 80 -area 55 -num-pu 3 -max-virtual 30m
        -workers 1 -flush-batch 1)

workdir=$(mktemp -d)
trap 'rm -rf "$workdir"' EXIT

go build -o "$workdir/addc-experiments" ./cmd/addc-experiments
bin="$workdir/addc-experiments"

# run_shard_with_kills <mode> <i> <extra flags...>: run shard i/K of the
# given mode, SIGKILLing it mid-sweep KILL_ROUNDS times (each next round
# resumes from the journal), then let a final resume run to completion.
run_shard_with_kills() {
    local mode=$1 i=$2; shift 2
    local extra=("$@") round pid journal
    journal="$workdir/$mode.shard-$i-of-$SHARDS.jsonl"
    for round in $(seq 1 "$KILL_ROUNDS"); do
        local args=("${COMMON[@]}" "${extra[@]}" -checkpoint "$workdir/$mode.jsonl" -shard "$i/$SHARDS")
        [ "$round" -gt 1 ] && args+=(-resume)
        "$bin" "${args[@]}" >/dev/null 2>>"$workdir/$mode-shard-$i.log" &
        pid=$!
        # Kill as soon as the journal holds one more line than it started
        # with; if the worker finishes first, that is a legal outcome too.
        local want=2
        [ -f "$journal" ] && want=$(($(wc -l <"$journal") + 1))
        for _ in $(seq 1 200); do
            if ! kill -0 "$pid" 2>/dev/null; then break; fi
            if [ -f "$journal" ] && [ "$(wc -l <"$journal")" -ge "$want" ]; then
                if kill -9 "$pid" 2>/dev/null; then
                    echo "round $round: SIGKILL" >>"$workdir/kills-$mode-$i.log"
                fi
                break
            fi
            sleep 0.01
        done
        wait "$pid" 2>/dev/null || true
    done
    # Final resume: must complete cleanly.
    "$bin" "${COMMON[@]}" "${extra[@]}" -checkpoint "$workdir/$mode.jsonl" -shard "$i/$SHARDS" -resume \
        >/dev/null 2>>"$workdir/$mode-shard-$i.log" \
        || { echo "$mode: shard $i/$SHARDS failed to resume to completion"; cat "$workdir/$mode-shard-$i.log"; exit 1; }
}

# chaos_round <mode> <extra flags...>: reference run, sharded chaos, merge,
# byte-compare — all under the given extra sweep flags.
chaos_round() {
    local mode=$1; shift
    local extra=("$@")

    echo "== $mode: reference (uninterrupted unsharded run)"
    "$bin" "${COMMON[@]}" "${extra[@]}" -checkpoint "$workdir/$mode-reference.jsonl" -csv \
        >"$workdir/$mode-reference.csv"
    [ -s "$workdir/$mode-reference.jsonl" ] || { echo "$mode: reference journaled nothing"; exit 1; }

    echo "== $mode: chaos ($SHARDS shard workers, $KILL_ROUNDS SIGKILL rounds each)"
    local i
    for i in $(seq 1 "$SHARDS"); do
        run_shard_with_kills "$mode" "$i" "${extra[@]}" &
    done
    wait

    echo "== $mode: merge"
    "$bin" "${COMMON[@]}" "${extra[@]}" -checkpoint "$workdir/$mode.jsonl" -merge -csv \
        >"$workdir/$mode-merged.csv" 2>"$workdir/$mode-merge.log" \
        || { echo "$mode: merge failed"; cat "$workdir/$mode-merge.log"; exit 1; }

    cmp "$workdir/$mode.jsonl" "$workdir/$mode-reference.jsonl" \
        || { echo "FAIL ($mode): merged journal differs from uninterrupted unsharded journal"; exit 1; }
    cmp "$workdir/$mode-merged.csv" "$workdir/$mode-reference.csv" \
        || { echo "FAIL ($mode): merged CSV differs from uninterrupted unsharded CSV"; exit 1; }
}

chaos_round scalar
chaos_round batch4 -batch 4

kills=$(cat "$workdir"/kills-*.log 2>/dev/null | wc -l)
echo "shard-chaos: $kills SIGKILLs landed mid-sweep; merged output byte-identical to the uninterrupted run in both modes"
if [ "$kills" -eq 0 ]; then
    echo "shard-chaos: WARNING: every worker finished before its kill; rerun or raise REPS for real chaos"
fi
echo "shard-chaos: OK"
