package main

import (
	"bytes"
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: addcrn
BenchmarkCollectBare-8         	       3	  27076512 ns/op	      8258 delay-slots
BenchmarkCollectInstrumented-8 	       3	  27650339 ns/op	      8258 delay-slots
BenchmarkHotPath-8             	123456789	         9.7 ns/op	       0 B/op	       0 allocs/op
PASS
ok  	addcrn	0.256s
`

func TestParse(t *testing.T) {
	var echo bytes.Buffer
	results, err := parse(strings.NewReader(sample), &echo)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 3 {
		t.Fatalf("parsed %d benchmarks, want 3", len(results))
	}
	bare, ok := results["BenchmarkCollectBare"]
	if !ok {
		t.Fatal("GOMAXPROCS suffix not stripped")
	}
	if bare.Iterations != 3 {
		t.Errorf("iterations = %d", bare.Iterations)
	}
	if bare.Metrics["ns/op"] != 27076512 || bare.Metrics["delay-slots"] != 8258 {
		t.Errorf("metrics = %v", bare.Metrics)
	}
	hot := results["BenchmarkHotPath"]
	if hot.Metrics["allocs/op"] != 0 || hot.Metrics["ns/op"] != 9.7 {
		t.Errorf("hot-path metrics = %v", hot.Metrics)
	}
	if echo.String() != sample {
		t.Error("input not echoed verbatim")
	}
}

func TestParseLineRejects(t *testing.T) {
	for _, line := range []string{
		"",
		"PASS",
		"ok  	addcrn	0.256s",
		"Benchmark only-a-name",
		"BenchmarkNoMetrics-8 10",
	} {
		if _, _, ok := parseLine(line); ok {
			t.Errorf("accepted %q", line)
		}
	}
}
