package main

import (
	"bytes"
	"io"
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: addcrn
BenchmarkCollectBare-8         	       3	  27076512 ns/op	      8258 delay-slots
BenchmarkCollectInstrumented-8 	       3	  27650339 ns/op	      8258 delay-slots
BenchmarkHotPath-8             	123456789	         9.7 ns/op	       0 B/op	       0 allocs/op
PASS
ok  	addcrn	0.256s
`

func TestParse(t *testing.T) {
	var echo bytes.Buffer
	results, err := parse(strings.NewReader(sample), &echo)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 3 {
		t.Fatalf("parsed %d benchmarks, want 3", len(results))
	}
	bare, ok := results["BenchmarkCollectBare"]
	if !ok {
		t.Fatal("GOMAXPROCS suffix not stripped")
	}
	if bare.Iterations != 3 {
		t.Errorf("iterations = %d", bare.Iterations)
	}
	if bare.Metrics["ns/op"] != 27076512 || bare.Metrics["delay-slots"] != 8258 {
		t.Errorf("metrics = %v", bare.Metrics)
	}
	hot := results["BenchmarkHotPath"]
	if hot.Metrics["allocs/op"] != 0 || hot.Metrics["ns/op"] != 9.7 {
		t.Errorf("hot-path metrics = %v", hot.Metrics)
	}
	if echo.String() != sample {
		t.Error("input not echoed verbatim")
	}
}

func TestParseLineRejects(t *testing.T) {
	for _, line := range []string{
		"",
		"PASS",
		"ok  	addcrn	0.256s",
		"Benchmark only-a-name",
		"BenchmarkNoMetrics-8 10",
	} {
		if _, _, ok := parseLine(line); ok {
			t.Errorf("accepted %q", line)
		}
	}
}

func TestParseRepeatsKeepFastest(t *testing.T) {
	const reps = `BenchmarkCollectBare-8 	1	30000000 ns/op	13831 delay-slots
BenchmarkCollectBare-8 	1	14000000 ns/op	13831 delay-slots
BenchmarkCollectBare-8 	1	22000000 ns/op	13831 delay-slots
`
	results, err := parse(strings.NewReader(reps), nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := results["BenchmarkCollectBare"].Metrics["ns/op"]; got != 14000000 {
		t.Errorf("kept %v ns/op, want the fastest rep (14000000)", got)
	}
}

func bench(ns float64) BenchResult {
	return BenchResult{Iterations: 1, Metrics: map[string]float64{"ns/op": ns}}
}

func benchAllocs(ns, allocs float64) BenchResult {
	return BenchResult{Iterations: 1, Metrics: map[string]float64{"ns/op": ns, "allocs/op": allocs}}
}

// gates builds a gateConfig with the given ns/op thresholds and the default
// allocs/op gate (30% beyond a 100-alloc floor).
func gates(maxRegress, gateFloor float64) gateConfig {
	return gateConfig{maxRegress: maxRegress, gateFloor: gateFloor, maxAllocsRegress: 0.30, allocsFloor: 100}
}

func TestDiffGate(t *testing.T) {
	base := map[string]BenchResult{
		"BenchmarkA": bench(1000),
		"BenchmarkB": bench(1000),
		"BenchmarkGone": bench(50),
	}
	fresh := map[string]BenchResult{
		"BenchmarkA": bench(1100), // +10%: within the gate
		"BenchmarkB": bench(1300), // +30%: regression
		"BenchmarkNew": bench(42),
	}
	var out bytes.Buffer
	err := diff(&out, base, fresh, gates(0.20, 0))
	if err == nil {
		t.Fatal("30% regression passed a 20% gate")
	}
	if !strings.Contains(err.Error(), "BenchmarkB") {
		t.Errorf("error does not name the regressed benchmark: %v", err)
	}
	for _, want := range []string{"BenchmarkA", "new", "gone"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("diff output missing %q:\n%s", want, out.String())
		}
	}
	if err := diff(&out, base, fresh, gates(0.40, 0)); err != nil {
		t.Errorf("30%% regression failed a 40%% gate: %v", err)
	}
}

func TestDiffImprovementPasses(t *testing.T) {
	base := map[string]BenchResult{"BenchmarkA": bench(3000)}
	fresh := map[string]BenchResult{"BenchmarkA": bench(1000)}
	if err := diff(io.Discard, base, fresh, gates(0.20, 0)); err != nil {
		t.Errorf("3x improvement flagged as regression: %v", err)
	}
}

func TestDiffGateFloor(t *testing.T) {
	base := map[string]BenchResult{
		"BenchmarkMicro": bench(200),     // below floor: timer noise at 1x
		"BenchmarkMacro": bench(5000000), // above floor: gated
	}
	fresh := map[string]BenchResult{
		"BenchmarkMicro": bench(400), // +100%, but ungated
		"BenchmarkMacro": bench(5100000),
	}
	var out bytes.Buffer
	if err := diff(&out, base, fresh, gates(0.20, 1e6)); err != nil {
		t.Errorf("sub-floor noise failed the gate: %v", err)
	}
	if !strings.Contains(out.String(), "ungated") {
		t.Errorf("sub-floor benchmark not marked ungated:\n%s", out.String())
	}
	fresh["BenchmarkMacro"] = bench(9000000)
	if err := diff(io.Discard, base, fresh, gates(0.20, 1e6)); err == nil {
		t.Error("above-floor regression passed the gate")
	}
}

// parallelBench builds one BenchmarkSweepParallel entry as parse would.
func parallelBench(ns, cpus float64) BenchResult {
	return BenchResult{Iterations: 1, Metrics: map[string]float64{"ns/op": ns, "cpus": cpus}}
}

// scalingGates builds a gateConfig with only the scaling gate armed.
func scalingGates(min float64, cores int, floor float64) gateConfig {
	return gateConfig{minScaling: min, scalingCores: cores, scalingFloor: floor}
}

func TestAugmentScalingInjectsEfficiency(t *testing.T) {
	results := map[string]BenchResult{
		"BenchmarkSweepParallel/scalar-c1": parallelBench(4e8, 8),
		"BenchmarkSweepParallel/scalar-c4": parallelBench(1.25e8, 8), // 3.2x
		"BenchmarkSweepParallel/scalar-c8": parallelBench(1e8, 8),    // 4.0x
		"BenchmarkCollectBare":             bench(1000),              // not part of the family
	}
	fams := augmentScaling(results)
	pts, ok := fams["scalar"]
	if !ok || len(pts) != 3 {
		t.Fatalf("families = %v, want scalar with 3 points", fams)
	}
	if got := results["BenchmarkSweepParallel/scalar-c4"].Metrics["speedup"]; got != 3.2 {
		t.Errorf("c4 speedup = %v, want 3.2", got)
	}
	if got := results["BenchmarkSweepParallel/scalar-c8"].Metrics["efficiency"]; got != 0.5 {
		t.Errorf("c8 efficiency = %v, want 0.5", got)
	}
	if _, polluted := results["BenchmarkCollectBare"].Metrics["speedup"]; polluted {
		t.Error("non-family benchmark gained a speedup metric")
	}
	var out bytes.Buffer
	printScaling(&out, fams)
	for _, want := range []string{"scalar", "3.20x", "80.0%"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("scaling table missing %q:\n%s", want, out.String())
		}
	}
}

func TestScalingGate(t *testing.T) {
	ok4x := map[string][]scalePoint{"scalar": {
		{name: "c1", cores: 1, ns: 4e8, cpus: 8},
		{name: "c4", cores: 4, ns: 1e8, cpus: 8},
	}}
	if err := scalingGate(io.Discard, ok4x, scalingGates(2.5, 4, 5e7)); err != nil {
		t.Errorf("4x speedup failed a 2.5x gate: %v", err)
	}
	flat := map[string][]scalePoint{"scalar": {
		{name: "c1", cores: 1, ns: 4e8, cpus: 8},
		{name: "c4", cores: 4, ns: 3e8, cpus: 8}, // 1.33x
	}}
	err := scalingGate(io.Discard, flat, scalingGates(2.5, 4, 5e7))
	if err == nil || !strings.Contains(err.Error(), "scalar") {
		t.Errorf("1.33x speedup passed a 2.5x gate: %v", err)
	}
}

func TestScalingGateFloors(t *testing.T) {
	// A machine with fewer CPUs than the gated core count cannot show the
	// speedup; the gate must disarm and say so.
	small := map[string][]scalePoint{"scalar": {
		{name: "c1", cores: 1, ns: 4e8, cpus: 1},
		{name: "c4", cores: 4, ns: 4.2e8, cpus: 1},
	}}
	var out bytes.Buffer
	if err := scalingGate(&out, small, scalingGates(2.5, 4, 5e7)); err != nil {
		t.Errorf("1-CPU machine tripped the scaling gate: %v", err)
	}
	if !strings.Contains(out.String(), "ungated") {
		t.Errorf("CPU floor not reported:\n%s", out.String())
	}
	// A grid below the ns/op floor measures fixed costs, not scaling.
	tiny := map[string][]scalePoint{"scalar": {
		{name: "c1", cores: 1, ns: 1e6, cpus: 8},
		{name: "c4", cores: 4, ns: 9e5, cpus: 8},
	}}
	out.Reset()
	if err := scalingGate(&out, tiny, scalingGates(2.5, 4, 5e7)); err != nil {
		t.Errorf("sub-floor grid tripped the scaling gate: %v", err)
	}
	if !strings.Contains(out.String(), "ungated") {
		t.Errorf("ns/op floor not reported:\n%s", out.String())
	}
}

func TestDiffAllocsGate(t *testing.T) {
	base := map[string]BenchResult{
		"BenchmarkA": benchAllocs(5000000, 10000),
		"BenchmarkB": benchAllocs(5000000, 8), // below the allocs floor
	}
	fresh := map[string]BenchResult{
		"BenchmarkA": benchAllocs(5100000, 15000), // ns/op fine, allocs +50%
		"BenchmarkB": benchAllocs(5100000, 16),    // +100% of 8 allocs: ungated
	}
	var out bytes.Buffer
	err := diff(&out, base, fresh, gates(0.20, 1e6))
	if err == nil {
		t.Fatal("+50% allocs/op passed a 30% gate")
	}
	if !strings.Contains(err.Error(), "BenchmarkA") || !strings.Contains(err.Error(), "allocs/op") {
		t.Errorf("error does not name the allocs regression: %v", err)
	}
	if strings.Contains(err.Error(), "BenchmarkB") {
		t.Errorf("sub-floor allocs count was gated: %v", err)
	}

	// Fewer allocations must never trip the gate, whatever the fraction.
	fresh["BenchmarkA"] = benchAllocs(5100000, 100)
	fresh["BenchmarkB"] = benchAllocs(5100000, 0)
	if err := diff(io.Discard, base, fresh, gates(0.20, 1e6)); err != nil {
		t.Errorf("allocation improvement flagged as regression: %v", err)
	}
}
