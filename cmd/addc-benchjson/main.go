// Command addc-benchjson converts `go test -bench` output on stdin into a
// machine-readable JSON file: benchmark name → iterations and every reported
// metric (ns/op, B/op, allocs/op, delay-slots, ...). Repeated lines for the
// same benchmark (`-count=N`) collapse to the fastest rep by ns/op — load
// noise only ever inflates a run, so the minimum is the stable estimator.
// The input stream is echoed to stdout unchanged so it can sit at the end of
// a pipe without hiding the human-readable run. `make bench` uses it to
// produce BENCH_addc.json.
//
// With -baseline, the fresh run is additionally diffed against a previously
// recorded JSON file: per-benchmark ns/op and allocs/op deltas are printed,
// and the exit status is non-zero when any shared benchmark regressed by more
// than -max-regress on ns/op (a fraction; 0.20 means 20% slower) or by more
// than -max-allocs-regress on allocs/op (0.30 means 30% more allocations —
// the tell for a reuse path quietly falling back to fresh construction).
// `make bench-diff` uses this as the local perf-regression gate.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
)

// BenchResult is one benchmark's parsed measurement.
type BenchResult struct {
	Iterations int64              `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"`
}

func main() {
	out := flag.String("out", "BENCH_addc.json", "output JSON path (empty to skip writing)")
	baseline := flag.String("baseline", "", "recorded JSON to diff the fresh run against")
	maxRegress := flag.Float64("max-regress", 0.20, "fail when ns/op regresses by more than this fraction of -baseline")
	gateFloor := flag.Float64("gate-floor", 1e6, "only gate benchmarks whose base ns/op is at least this (short runs are timer noise at -benchtime 1x)")
	maxAllocsRegress := flag.Float64("max-allocs-regress", 0.30, "fail when allocs/op regresses by more than this fraction of -baseline")
	allocsFloor := flag.Float64("allocs-gate-floor", 100, "only gate allocs/op when the base count is at least this (single-digit counts quantize)")
	minScaling := flag.Float64("min-scaling", 2.5, "fail when BenchmarkSweepParallel's speedup at -scaling-cores falls below this (with -baseline)")
	scalingCores := flag.Int("scaling-cores", 4, "worker count the parallel-scaling gate checks")
	scalingFloor := flag.Float64("scaling-floor", 5e7, "only gate scaling when the 1-core ns/op is at least this (tiny grids measure scheduling, not work)")
	flag.Parse()
	gates := gateConfig{
		maxRegress:       *maxRegress,
		gateFloor:        *gateFloor,
		maxAllocsRegress: *maxAllocsRegress,
		allocsFloor:      *allocsFloor,
		minScaling:       *minScaling,
		scalingCores:     *scalingCores,
		scalingFloor:     *scalingFloor,
	}
	if err := run(os.Stdin, os.Stdout, *out, *baseline, gates); err != nil {
		fmt.Fprintln(os.Stderr, "addc-benchjson:", err)
		os.Exit(1)
	}
}

// gateConfig bundles the regression thresholds: a fractional ns/op gate and a
// fractional allocs/op gate, each with a floor below which the base
// measurement is too small to gate meaningfully.
type gateConfig struct {
	maxRegress       float64
	gateFloor        float64
	maxAllocsRegress float64
	allocsFloor      float64
	minScaling       float64
	scalingCores     int
	scalingFloor     float64
}

func run(r io.Reader, echo io.Writer, outPath, baselinePath string, gates gateConfig) error {
	results, err := parse(r, echo)
	if err != nil {
		return err
	}
	if len(results) == 0 {
		return fmt.Errorf("no benchmark lines found on stdin")
	}
	scaling := augmentScaling(results)
	if len(scaling) > 0 {
		printScaling(echo, scaling)
	}
	if outPath != "" {
		data, err := json.MarshalIndent(results, "", "  ")
		if err != nil {
			return err
		}
		data = append(data, '\n')
		if err := os.WriteFile(outPath, data, 0o644); err != nil {
			return err
		}
	}
	if baselinePath != "" {
		base, err := loadBaseline(baselinePath)
		if err != nil {
			return err
		}
		if err := scalingGate(echo, scaling, gates); err != nil {
			return err
		}
		return diff(echo, base, results, gates)
	}
	return nil
}

// parallelPrefix is the benchmark family the scaling analysis derives from:
// sub-benchmarks named <family>-c<cores>, every core count of one family
// running the identical sweep configuration.
const parallelPrefix = "BenchmarkSweepParallel/"

// scalePoint is one (family, core count) measurement of the parallel family.
type scalePoint struct {
	name  string // full benchmark name, for metric injection
	cores int
	ns    float64
	cpus  float64 // machine core count the benchmark self-reported
}

// augmentScaling derives speedup and scaling efficiency for every
// BenchmarkSweepParallel family present and injects them as metrics on the
// per-core-count entries (so BENCH_addc.json records them), returning the
// families keyed by name with points sorted by core count. Speedup is
// ns/op(c1) / ns/op(cN) within a family; efficiency divides by N.
func augmentScaling(results map[string]BenchResult) map[string][]scalePoint {
	fams := make(map[string][]scalePoint)
	for name, r := range results {
		rest, ok := strings.CutPrefix(name, parallelPrefix)
		if !ok {
			continue
		}
		i := strings.LastIndex(rest, "-c")
		if i < 0 {
			continue
		}
		cores, err := strconv.Atoi(rest[i+2:])
		if err != nil || cores < 1 {
			continue
		}
		fams[rest[:i]] = append(fams[rest[:i]], scalePoint{
			name:  name,
			cores: cores,
			ns:    r.Metrics["ns/op"],
			cpus:  r.Metrics["cpus"],
		})
	}
	for fam, pts := range fams {
		sort.Slice(pts, func(i, j int) bool { return pts[i].cores < pts[j].cores })
		fams[fam] = pts
		var base float64
		for _, p := range pts {
			if p.cores == 1 {
				base = p.ns
			}
		}
		if base <= 0 {
			continue
		}
		for _, p := range pts {
			if p.ns <= 0 {
				continue
			}
			speedup := base / p.ns
			results[p.name].Metrics["speedup"] = speedup
			results[p.name].Metrics["efficiency"] = speedup / float64(p.cores)
		}
	}
	return fams
}

// printScaling renders the scaling-efficiency table (cores vs speedup per
// family) that EXPERIMENTS.md's parallel-scaling section is generated from.
func printScaling(w io.Writer, fams map[string][]scalePoint) {
	names := make([]string, 0, len(fams))
	for name := range fams {
		names = append(names, name)
	}
	sort.Strings(names)
	fmt.Fprintf(w, "\n%-10s %6s %14s %9s %11s\n", "family", "cores", "ns/op", "speedup", "efficiency")
	for _, name := range names {
		var base float64
		for _, p := range fams[name] {
			if p.cores == 1 {
				base = p.ns
			}
		}
		for _, p := range fams[name] {
			if base > 0 && p.ns > 0 {
				s := base / p.ns
				fmt.Fprintf(w, "%-10s %6d %14.0f %8.2fx %10.1f%%\n",
					name, p.cores, p.ns, s, 100*s/float64(p.cores))
			} else {
				fmt.Fprintf(w, "%-10s %6d %14.0f %9s %11s\n", name, p.cores, p.ns, "-", "-")
			}
		}
	}
}

// scalingGate enforces the parallel-efficiency floor: every family measured
// at both 1 and gates.scalingCores cores must show at least gates.minScaling
// speedup. Two documented floors keep the gate honest instead of flaky:
// it only arms when the benchmark self-reports at least scalingCores machine
// CPUs (a smaller box physically cannot exhibit the speedup — its cN runs
// time-slice one core and measure scheduling overhead), and only when the
// 1-core run is at least scalingFloor ns/op (a grid that completes in
// milliseconds is dominated by per-sweep fixed costs, and its ratio flaps).
func scalingGate(w io.Writer, fams map[string][]scalePoint, gates gateConfig) error {
	var failed []string
	for _, name := range sortedKeys(fams) {
		var c1, cn *scalePoint
		for i := range fams[name] {
			p := &fams[name][i]
			switch p.cores {
			case 1:
				c1 = p
			case gates.scalingCores:
				cn = p
			}
		}
		if c1 == nil || cn == nil || c1.ns <= 0 || cn.ns <= 0 {
			continue
		}
		if cn.cpus > 0 && cn.cpus < float64(gates.scalingCores) {
			fmt.Fprintf(w, "scaling gate: %s ungated (machine has %.0f CPUs, gate needs %d)\n",
				name, cn.cpus, gates.scalingCores)
			continue
		}
		if c1.ns < gates.scalingFloor {
			fmt.Fprintf(w, "scaling gate: %s ungated (1-core run %.0f ns/op is below the %.0f floor)\n",
				name, c1.ns, gates.scalingFloor)
			continue
		}
		speedup := c1.ns / cn.ns
		if speedup < gates.minScaling {
			failed = append(failed, fmt.Sprintf("%s (%.2fx at %d cores, need %.2fx)",
				name, speedup, gates.scalingCores, gates.minScaling))
		}
	}
	if len(failed) > 0 {
		return fmt.Errorf("parallel scaling below gate: %s", strings.Join(failed, ", "))
	}
	return nil
}

func sortedKeys(m map[string][]scalePoint) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func loadBaseline(path string) (map[string]BenchResult, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var base map[string]BenchResult
	if err := json.Unmarshal(data, &base); err != nil {
		return nil, fmt.Errorf("parse %s: %w", path, err)
	}
	return base, nil
}

// diff prints per-benchmark ns/op and allocs/op deltas of fresh vs base and
// errors when any shared benchmark regressed beyond its gate. Benchmarks
// present on only one side are reported but never fail the gate (new
// benchmarks must be recordable before a baseline exists), and neither do
// benchmarks below the gate floors — a single iteration of a
// microsecond-scale benchmark measures timer granularity, not the code, and a
// handful of allocations quantizes too coarsely for a fractional threshold.
func diff(w io.Writer, base, fresh map[string]BenchResult, gates gateConfig) error {
	names := make([]string, 0, len(fresh))
	for name := range fresh {
		names = append(names, name)
	}
	sort.Strings(names)
	var regressed []string
	fmt.Fprintf(w, "\n%-34s %14s %14s %9s %12s %9s\n",
		"benchmark", "base ns/op", "fresh ns/op", "delta", "allocs/op", "delta")
	for _, name := range names {
		f := fresh[name]
		fns, ok := f.Metrics["ns/op"]
		if !ok {
			continue
		}
		b, ok := base[name]
		if !ok {
			fmt.Fprintf(w, "%-34s %14s %14.0f %9s\n", name, "-", fns, "new")
			continue
		}
		bns, ok := b.Metrics["ns/op"]
		if !ok || bns == 0 {
			continue
		}
		delta := (fns - bns) / bns
		note := ""
		if bns < gates.gateFloor {
			note = " (ungated)"
		}
		fmt.Fprintf(w, "%-34s %14.0f %14.0f %+8.1f%%%s", name, bns, fns, delta*100, note)
		if delta > gates.maxRegress && bns >= gates.gateFloor {
			regressed = append(regressed, fmt.Sprintf("%s (ns/op %+.1f%%)", name, delta*100))
		}
		// Allocation counts are near-deterministic, so a regression there is
		// signal even when wall time is noisy.
		ballocs, bok := b.Metrics["allocs/op"]
		fallocs, fok := f.Metrics["allocs/op"]
		if bok && fok && ballocs > 0 {
			adelta := (fallocs - ballocs) / ballocs
			fmt.Fprintf(w, " %12.0f %+8.1f%%", fallocs, adelta*100)
			if adelta > gates.maxAllocsRegress && ballocs >= gates.allocsFloor {
				regressed = append(regressed, fmt.Sprintf("%s (allocs/op %+.1f%%)", name, adelta*100))
			}
		}
		fmt.Fprintln(w)
	}
	for name := range base {
		if _, ok := fresh[name]; !ok {
			fmt.Fprintf(w, "%-34s %14.0f %14s %9s\n", name, base[name].Metrics["ns/op"], "-", "gone")
		}
	}
	if len(regressed) > 0 {
		return fmt.Errorf("regression beyond gates (ns/op %.0f%%, allocs/op %.0f%%): %s",
			gates.maxRegress*100, gates.maxAllocsRegress*100, strings.Join(regressed, ", "))
	}
	return nil
}

// parse scans benchmark result lines ("BenchmarkName-8  10  123 ns/op  4
// extra-metric ...") and echoes every input line verbatim.
func parse(r io.Reader, echo io.Writer) (map[string]BenchResult, error) {
	results := make(map[string]BenchResult)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := sc.Text()
		if echo != nil {
			fmt.Fprintln(echo, line)
		}
		res, name, ok := parseLine(line)
		if ok {
			if prev, dup := results[name]; !dup || faster(res, prev) {
				results[name] = res
			}
		}
	}
	return results, sc.Err()
}

// faster reports whether rep a beat rep b on ns/op. Reps without ns/op
// (custom-metric-only lines) fall back to last-wins.
func faster(a, b BenchResult) bool {
	an, aok := a.Metrics["ns/op"]
	bn, bok := b.Metrics["ns/op"]
	if !aok || !bok {
		return true
	}
	return an < bn
}

func parseLine(line string) (BenchResult, string, bool) {
	fields := strings.Fields(line)
	if len(fields) < 2 || !strings.HasPrefix(fields[0], "Benchmark") {
		return BenchResult{}, "", false
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return BenchResult{}, "", false
	}
	// Strip the -GOMAXPROCS suffix so names are stable across machines.
	name := fields[0]
	if i := strings.LastIndexByte(name, '-'); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	res := BenchResult{Iterations: iters, Metrics: make(map[string]float64)}
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			break // trailing non-metric annotation
		}
		res.Metrics[fields[i+1]] = v
	}
	if len(res.Metrics) == 0 {
		return BenchResult{}, "", false
	}
	return res, name, true
}
