// Command addc-benchjson converts `go test -bench` output on stdin into a
// machine-readable JSON file: benchmark name → iterations and every reported
// metric (ns/op, delay-slots, allocs/op, ...). The input stream is echoed to
// stdout unchanged so it can sit at the end of a pipe without hiding the
// human-readable run. `make bench` uses it to produce BENCH_addc.json.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// BenchResult is one benchmark's parsed measurement.
type BenchResult struct {
	Iterations int64              `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"`
}

func main() {
	out := flag.String("out", "BENCH_addc.json", "output JSON path")
	flag.Parse()
	if err := run(os.Stdin, os.Stdout, *out); err != nil {
		fmt.Fprintln(os.Stderr, "addc-benchjson:", err)
		os.Exit(1)
	}
}

func run(r io.Reader, echo io.Writer, outPath string) error {
	results, err := parse(r, echo)
	if err != nil {
		return err
	}
	if len(results) == 0 {
		return fmt.Errorf("no benchmark lines found on stdin")
	}
	data, err := json.MarshalIndent(results, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	return os.WriteFile(outPath, data, 0o644)
}

// parse scans benchmark result lines ("BenchmarkName-8  10  123 ns/op  4
// extra-metric ...") and echoes every input line verbatim.
func parse(r io.Reader, echo io.Writer) (map[string]BenchResult, error) {
	results := make(map[string]BenchResult)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := sc.Text()
		if echo != nil {
			fmt.Fprintln(echo, line)
		}
		res, name, ok := parseLine(line)
		if ok {
			results[name] = res
		}
	}
	return results, sc.Err()
}

func parseLine(line string) (BenchResult, string, bool) {
	fields := strings.Fields(line)
	if len(fields) < 2 || !strings.HasPrefix(fields[0], "Benchmark") {
		return BenchResult{}, "", false
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return BenchResult{}, "", false
	}
	// Strip the -GOMAXPROCS suffix so names are stable across machines.
	name := fields[0]
	if i := strings.LastIndexByte(name, '-'); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	res := BenchResult{Iterations: iters, Metrics: make(map[string]float64)}
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			break // trailing non-metric annotation
		}
		res.Metrics[fields[i+1]] = v
	}
	if len(res.Metrics) == 0 {
		return BenchResult{}, "", false
	}
	return res, name, true
}
