// Command addc-pcr regenerates the paper's Fig. 4: the Proper
// Carrier-sensing Range as a function of P_p, P_s, eta_p, eta_s, R and r,
// for path loss exponents 3.0 and 4.0, at the paper's Fig. 4 defaults
// (alpha=4, P_p=10, R=12, eta_p=10dB, P_s=10, r=10, eta_s=10dB).
package main

import (
	"flag"
	"fmt"
	"os"

	"addcrn/internal/pcr"
)

type panel struct {
	v  pcr.SweepVar
	xs []float64
}

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "addc-pcr:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("addc-pcr", flag.ContinueOnError)
	csv := fs.Bool("csv", false, "emit CSV instead of tables")
	if err := fs.Parse(args); err != nil {
		return err
	}

	base := pcr.Fig4Defaults()
	alphas := []float64{3.0, 4.0}
	panels := []panel{
		{v: pcr.SweepPowerPU, xs: []float64{5, 10, 15, 20, 25, 30}},
		{v: pcr.SweepPowerSU, xs: []float64{5, 10, 15, 20, 25, 30}},
		{v: pcr.SweepEtaPU, xs: []float64{4, 6, 8, 10, 12, 14}},
		{v: pcr.SweepEtaSU, xs: []float64{4, 6, 8, 10, 12, 14}},
		{v: pcr.SweepRadiusPU, xs: []float64{6, 8, 10, 12, 14, 16}},
		{v: pcr.SweepRadiusSU, xs: []float64{6, 8, 10, 12, 14, 16}},
	}

	for _, p := range panels {
		series, err := pcr.Fig4Series(base, p.v, p.xs, alphas)
		if err != nil {
			return err
		}
		if *csv {
			fmt.Printf("# fig4 sweep %v\nx,alpha,pcr,kappa\n", p.v)
			for _, s := range series {
				for _, pt := range s {
					fmt.Printf("%g,%g,%g,%g\n", pt.X, pt.Alpha, pt.PCR, pt.Kappa)
				}
			}
			continue
		}
		fmt.Printf("Fig. 4 panel: PCR vs %v\n", p.v)
		fmt.Printf("%-10s", p.v.String())
		for _, a := range alphas {
			fmt.Printf(" %14s", fmt.Sprintf("alpha=%.1f", a))
		}
		fmt.Println()
		for i := range p.xs {
			fmt.Printf("%-10.4g", p.xs[i])
			for ai := range alphas {
				fmt.Printf(" %14.2f", series[ai][i].PCR)
			}
			fmt.Println()
		}
		fmt.Println()
	}
	return nil
}
