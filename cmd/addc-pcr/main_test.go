package main

import (
	"os"
	"strings"
	"testing"
)

// capture runs f with stdout redirected to a pipe and returns the output.
func capture(t *testing.T, f func() error) string {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	errRun := f()
	w.Close()
	os.Stdout = old
	var sb strings.Builder
	buf := make([]byte, 4096)
	for {
		n, err := r.Read(buf)
		sb.Write(buf[:n])
		if err != nil {
			break
		}
	}
	if errRun != nil {
		t.Fatal(errRun)
	}
	return sb.String()
}

func TestRunTables(t *testing.T) {
	out := capture(t, func() error { return run(nil) })
	for _, want := range []string{"PCR vs P_p", "PCR vs eta_s(dB)", "alpha=3.0", "alpha=4.0"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q", want)
		}
	}
	// Six panels.
	if got := strings.Count(out, "Fig. 4 panel"); got != 6 {
		t.Errorf("%d panels, want 6", got)
	}
}

func TestRunCSV(t *testing.T) {
	out := capture(t, func() error { return run([]string{"-csv"}) })
	if !strings.Contains(out, "x,alpha,pcr,kappa") {
		t.Error("CSV header missing")
	}
	if got := strings.Count(out, "# fig4 sweep"); got != 6 {
		t.Errorf("%d CSV sections, want 6", got)
	}
}

func TestRunBadFlag(t *testing.T) {
	if err := run([]string{"-definitely-not-a-flag"}); err == nil {
		t.Error("bad flag accepted")
	}
}
