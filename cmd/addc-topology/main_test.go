package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func genTopology(t *testing.T) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "topo.json")
	err := run([]string{"gen", "-n", "120", "-N", "4", "-area", "65", "-seed", "3", "-o", path})
	if err != nil {
		t.Fatal(err)
	}
	return path
}

func TestGenWritesTopology(t *testing.T) {
	path := genTopology(t)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), `"version": 1`) {
		t.Error("missing version field")
	}
	if !strings.Contains(string(data), `"numSU": 120`) {
		t.Error("missing params")
	}
}

func TestInfoOnGeneratedTopology(t *testing.T) {
	path := genTopology(t)
	if err := run([]string{"info", path}); err != nil {
		t.Fatal(err)
	}
}

func TestSVGOnGeneratedTopology(t *testing.T) {
	topo := genTopology(t)
	out := filepath.Join(t.TempDir(), "topo.svg")
	if err := run([]string{"svg", "-o", out, topo}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(data), "<svg") {
		t.Error("output is not SVG")
	}
}

func TestTraceSubcommand(t *testing.T) {
	for _, model := range []string{"bernoulli", "gilbert"} {
		out := filepath.Join(t.TempDir(), model+".csv")
		err := run([]string{"trace", "-N", "3", "-slots", "500", "-model", model, "-o", out})
		if err != nil {
			t.Fatalf("%s: %v", model, err)
		}
		data, err := os.ReadFile(out)
		if err != nil {
			t.Fatal(err)
		}
		if !strings.Contains(string(data), "# slots=500") {
			t.Errorf("%s: missing trace header", model)
		}
	}
}

func TestUsageErrors(t *testing.T) {
	cases := [][]string{
		nil,
		{"bogus"},
		{"info"},
		{"info", "/does/not/exist.json"},
		{"svg"},
		{"trace", "-model", "nope"},
	}
	for _, args := range cases {
		if err := run(args); err == nil {
			t.Errorf("args %v accepted", args)
		}
	}
}
