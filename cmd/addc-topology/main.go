// Command addc-topology generates, inspects, and renders cognitive radio
// network deployments:
//
//	addc-topology gen -n 300 -N 8 -seed 1 -o topo.json     # deploy & save
//	addc-topology info topo.json                           # stats + CDS
//	addc-topology svg topo.json -o topo.svg                # Fig. 2 render
//	addc-topology trace -N 8 -slots 10000 -model gilbert   # PU trace CSV
package main

import (
	"flag"
	"fmt"
	"os"

	"addcrn/internal/cds"
	"addcrn/internal/core"
	"addcrn/internal/graphx"
	"addcrn/internal/netmodel"
	"addcrn/internal/pcr"
	"addcrn/internal/rng"
	"addcrn/internal/spectrum"
	"addcrn/internal/theory"
	"addcrn/internal/viz"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "addc-topology:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	if len(args) == 0 {
		return fmt.Errorf("usage: addc-topology gen|info|svg|trace [flags]")
	}
	switch args[0] {
	case "gen":
		return runGen(args[1:])
	case "info":
		return runInfo(args[1:])
	case "svg":
		return runSVG(args[1:])
	case "trace":
		return runTrace(args[1:])
	default:
		return fmt.Errorf("unknown subcommand %q (want gen, info, svg or trace)", args[0])
	}
}

func runGen(args []string) error {
	fs := flag.NewFlagSet("gen", flag.ContinueOnError)
	base := netmodel.ScaledDefaultParams()
	var (
		n    = fs.Int("n", base.NumSU, "number of SUs")
		numN = fs.Int("N", base.NumPU, "number of PUs")
		area = fs.Float64("area", base.Area, "square side (m)")
		seed = fs.Uint64("seed", 1, "seed")
		out  = fs.String("o", "", "output file (default stdout)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	p := base
	p.NumSU = *n
	p.NumPU = *numN
	p.Area = *area
	nw, err := netmodel.DeployConnected(p, rng.New(*seed), 50)
	if err != nil {
		return err
	}
	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	return netmodel.WriteTopology(w, nw)
}

func loadTopology(path string) (*netmodel.Network, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return netmodel.ReadTopology(f)
}

func runInfo(args []string) error {
	fs := flag.NewFlagSet("info", flag.ContinueOnError)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("usage: addc-topology info <topo.json>")
	}
	nw, err := loadTopology(fs.Arg(0))
	if err != nil {
		return err
	}
	adj, err := graphx.UnitDisk(nw.Bounds(), nw.SU, nw.Params.RadiusSU)
	if err != nil {
		return err
	}
	consts, err := pcr.Compute(nw.Params)
	if err != nil {
		return err
	}
	bounds, err := theory.ComputeBounds(nw.Params)
	if err != nil {
		return err
	}
	fmt.Printf("area %gx%g, n=%d SUs, N=%d PUs\n", nw.Params.Area, nw.Params.Area,
		nw.Params.NumSU, nw.Params.NumPU)
	fmt.Printf("graph: %d edges, max degree %d, connected=%v\n",
		adj.NumEdges(), adj.MaxDegree(), adj.Connected())
	fmt.Printf("PCR: kappa=%.3f range=%.1fm  p_o=%.4f\n",
		consts.Kappa, consts.Range, bounds.OpportunityProb)
	tree, err := cds.Build(adj, netmodel.BaseStationID)
	if err != nil {
		return err
	}
	st := tree.ComputeStats(adj)
	fmt.Printf("CDS tree: %d dominators, %d connectors, %d dominatees, depth %d, max degree %d\n",
		st.NumDominators, st.NumConnectors, st.NumDominatees, st.Depth, st.MaxDegree)
	fmt.Printf("Lemma 1 check: max connectors adjacent to a dominator = %d (bound 12)\n",
		st.MaxConnectorAdj)
	fmt.Printf("Lemma 6 check: realized Delta = %d (bound %.1f)\n", st.MaxDegree, bounds.DeltaBound)
	return nil
}

func runSVG(args []string) error {
	fs := flag.NewFlagSet("svg", flag.ContinueOnError)
	out := fs.String("o", "", "output SVG file (default stdout)")
	size := fs.Int("size", 700, "image size in pixels")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("usage: addc-topology svg [-o out.svg] <topo.json>")
	}
	nw, err := loadTopology(fs.Arg(0))
	if err != nil {
		return err
	}
	tree, err := core.BuildTree(nw)
	if err != nil {
		return err
	}
	svg := viz.TopologySVG(nw, tree, *size)
	if *out == "" {
		fmt.Println(svg)
		return nil
	}
	return os.WriteFile(*out, []byte(svg), 0o644)
}

func runTrace(args []string) error {
	fs := flag.NewFlagSet("trace", flag.ContinueOnError)
	var (
		numN    = fs.Int("N", 8, "number of PUs")
		slots   = fs.Int64("slots", 100000, "trace horizon in slots")
		model   = fs.String("model", "bernoulli", "bernoulli or gilbert")
		pt      = fs.Float64("pt", 0.3, "bernoulli per-slot activity")
		meanOn  = fs.Float64("mean-on", 20, "gilbert mean burst length (slots)")
		meanOff = fs.Float64("mean-off", 50, "gilbert mean silence length (slots)")
		seed    = fs.Uint64("seed", 1, "seed")
		out     = fs.String("o", "", "output CSV file (default stdout)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	var (
		tr  *spectrum.Trace
		err error
	)
	switch *model {
	case "bernoulli":
		tr = spectrum.GenerateBernoulliTrace(*numN, *pt, *slots, rng.New(*seed))
	case "gilbert":
		tr, err = spectrum.GenerateGilbertTrace(*numN, *meanOn, *meanOff, *slots, rng.New(*seed))
		if err != nil {
			return err
		}
	default:
		return fmt.Errorf("unknown trace model %q", *model)
	}
	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	fmt.Fprintf(os.Stderr, "duty cycle: %.4f\n", tr.DutyCycle())
	return tr.WriteCSV(w)
}
