package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunRejectsUnknownFigure(t *testing.T) {
	if err := run([]string{"-fig", "9z"}); err == nil {
		t.Error("unknown figure accepted")
	}
}

func TestRunRejectsBadFlag(t *testing.T) {
	if err := run([]string{"-definitely-not-a-flag"}); err == nil {
		t.Error("bad flag accepted")
	}
}

func TestRunCurvesWritesSVG(t *testing.T) {
	if testing.Short() {
		t.Skip("full collection run")
	}
	dir := t.TempDir()
	if err := run([]string{"-fig", "curves", "-svg", dir}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(dir, "curves.svg"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(data), "<svg") {
		t.Error("curves output is not SVG")
	}
}
