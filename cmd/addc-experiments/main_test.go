package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunRejectsUnknownFigure(t *testing.T) {
	if err := run([]string{"-fig", "9z"}); err == nil {
		t.Error("unknown figure accepted")
	}
}

func TestRunRejectsBadFlag(t *testing.T) {
	if err := run([]string{"-definitely-not-a-flag"}); err == nil {
		t.Error("bad flag accepted")
	}
}

func TestRunCurvesWritesSVG(t *testing.T) {
	if testing.Short() {
		t.Skip("full collection run")
	}
	dir := t.TempDir()
	if err := run([]string{"-fig", "curves", "-svg", dir}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(dir, "curves.svg"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(data), "<svg") {
		t.Error("curves output is not SVG")
	}
}

// -shard flag validation: malformed specs and out-of-range indices are
// rejected before any work starts, and a shard without a checkpoint (or
// combined with the merge phase) is a usage error.
func TestRunRejectsBadShardFlags(t *testing.T) {
	cases := []struct {
		name string
		args []string
	}{
		{"malformed", []string{"-shard", "banana", "-checkpoint", "cp.jsonl"}},
		{"no-slash", []string{"-shard", "13", "-checkpoint", "cp.jsonl"}},
		{"index-zero", []string{"-shard", "0/3", "-checkpoint", "cp.jsonl"}},
		{"index-negative", []string{"-shard", "-1/3", "-checkpoint", "cp.jsonl"}},
		{"index-past-count", []string{"-shard", "4/3", "-checkpoint", "cp.jsonl"}},
		{"count-zero", []string{"-shard", "1/0", "-checkpoint", "cp.jsonl"}},
		{"count-negative", []string{"-shard", "1/-2", "-checkpoint", "cp.jsonl"}},
		{"float-index", []string{"-shard", "1.5/3", "-checkpoint", "cp.jsonl"}},
		{"empty-count", []string{"-shard", "1/", "-checkpoint", "cp.jsonl"}},
		{"no-checkpoint", []string{"-shard", "1/3"}},
		{"shard-and-merge", []string{"-shard", "1/3", "-merge", "-checkpoint", "cp.jsonl"}},
		{"merge-no-checkpoint", []string{"-merge"}},
		{"bad-xs", []string{"-xs", "0.1,zebra"}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if err := run(tc.args); err == nil {
				t.Errorf("run(%v) accepted", tc.args)
			}
		})
	}
}

// Merging with no shard journals present names the expected layout instead
// of failing obscurely.
func TestRunMergeWithoutShardJournals(t *testing.T) {
	cp := filepath.Join(t.TempDir(), "cp.jsonl")
	err := run([]string{"-fig", "6c", "-merge", "-checkpoint", cp})
	if err == nil || !strings.Contains(err.Error(), "no shard journals") {
		t.Fatalf("err = %v, want a no-shard-journals explanation", err)
	}
}
