// Command addc-experiments regenerates every evaluation artifact of the
// paper: the six Fig. 6 delay sweeps (ADDC vs Coolest), and the Theorem 1/2
// bound comparisons. Output is a paper-style table per figure, optionally
// CSV.
//
// Usage:
//
//	addc-experiments                  # all of fig 6a..6f at the scaled point
//	addc-experiments -fig 6c          # a single sweep
//	addc-experiments -fig thm1        # Theorem 1 bound check (stand-alone)
//	addc-experiments -fig ext1        # multi-channel extension sweep
//	addc-experiments -fig ext2        # delivery ratio vs fault rate sweep
//	addc-experiments -fig curves      # delivery-progress SVG for one run
//	addc-experiments -fig thm2        # Theorem 2 bound check (with PUs)
//	addc-experiments -paper-scale     # paper-nominal parameters (slow!)
//	addc-experiments -csv             # machine-readable output
//
// Long sweeps are interruptible and resumable: -checkpoint journals every
// completed repetition to a crash-safe JSONL file, SIGINT/SIGTERM or an
// expired -timeout stop the sweep cooperatively (the partial table goes to
// stderr), and -resume picks
// up exactly where the journal stops, reproducing the uninterrupted output
// byte for byte. -guard runs every simulation with runtime invariant guards.
//
// Sweeps also shard across processes or machines: -shard i/k runs only the
// i-th of k deterministic partitions of the (x, rep) grid, journaling to
// <checkpoint>.shard-i-of-k.jsonl (a killed shard resumes with -resume);
// once every shard has run, -merge validates coverage and assembles the
// journal and summary a single-process run would have produced, byte for
// byte:
//
//	for i in 1 2 3; do addc-experiments -fig 6c -shard $i/3 -checkpoint cp.jsonl & done; wait
//	addc-experiments -fig 6c -merge -checkpoint cp.jsonl
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"
	"strconv"
	"strings"
	"syscall"
	"time"

	"addcrn/internal/experiment"
	"addcrn/internal/netmodel"
	"addcrn/internal/spectrum"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "addc-experiments:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("addc-experiments", flag.ContinueOnError)
	var (
		fig        = fs.String("fig", "all", "figure to regenerate: 6a..6f, thm1, thm2, or all")
		reps       = fs.Int("reps", 10, "repetitions per sweep point")
		seed       = fs.Uint64("seed", 1, "root seed")
		csv        = fs.Bool("csv", false, "emit CSV instead of tables")
		paperScale = fs.Bool("paper-scale", false, "use the paper's nominal parameters with the aggregate PU model (very slow)")
		handoff    = fs.Bool("handoff", true, "abort transmissions when a PU arrives (spectrum handoff)")
		budget     = fs.Duration("max-virtual", 2*time.Hour, "virtual-time budget per run")
		timeout    = fs.Duration("timeout", 0, "wall-clock budget for the whole invocation (0: none); expiry stops sweeps like SIGINT, printing partial results (combine with -checkpoint to resume)")
		sameMAC    = fs.Bool("same-mac", false, "run Coolest on ADDC's PCR MAC (routing-only ablation)")
		svgDir     = fs.String("svg", "", "directory to also write one SVG chart per figure")
		checkpoint = fs.String("checkpoint", "", "journal completed repetitions to this JSONL file (per-figure suffix added when sweeping several figures)")
		resume     = fs.Bool("resume", false, "with -checkpoint: skip repetitions the journal already records")
		guard      = fs.Bool("guard", false, "run every simulation with runtime invariant guards")
		shareTopo  = fs.Bool("share-topology", false, "memoize deployments and share construction artifacts across grid points and repetitions (changes the placement-seed derivation; each mode is internally deterministic)")

		shardFlag    = fs.String("shard", "", "run only shard i/k of each sweep's (x, rep) grid, journaling to <checkpoint>.shard-i-of-k.jsonl (requires -checkpoint; run all k shards, then -merge)")
		merge        = fs.Bool("merge", false, "merge the shard journals beside -checkpoint into the unsharded journal and print the summary it implies (requires -checkpoint)")
		allowMissing = fs.Bool("allow-missing", false, "with -merge: tolerate missing or empty shards and print the partial summary the surviving shards cover")
		flushBatch   = fs.Int("flush-batch", 0, "checkpoint flush batch size (default 32; 1 persists every completed pair immediately — what the chaos harness uses)")
		batch        = fs.Int("batch", 1, "repetitions per worker executed in lockstep through the lane-batched engine (1: scalar path, bit-identical to earlier releases; >1 changes the placement-seed derivation, so every shard and resume of one sweep must use the same value)")
		workers      = fs.Int("workers", 0, "cap sweep parallelism (default GOMAXPROCS)")
		xsFlag       = fs.String("xs", "", "comma-separated x values overriding the figure's sweep axis (small grids for smoke tests)")
		numSU        = fs.Int("num-su", 0, "override the number of secondary users")
		numPU        = fs.Int("num-pu", 0, "override the number of primary users")
		area         = fs.Float64("area", 0, "override the deployment area side length")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *resume && *checkpoint == "" {
		return fmt.Errorf("-resume requires -checkpoint")
	}
	var shard experiment.ShardSpec
	if *shardFlag != "" {
		var err error
		if shard, err = experiment.ParseShard(*shardFlag); err != nil {
			return err
		}
		if *checkpoint == "" {
			return fmt.Errorf("-shard requires -checkpoint (each shard streams results to its own journal)")
		}
		if *merge {
			return fmt.Errorf("-shard and -merge are different phases: run every shard first, then merge")
		}
	}
	if *merge && *checkpoint == "" {
		return fmt.Errorf("-merge requires -checkpoint (the merged journal's path, with shard journals beside it)")
	}
	var xs []float64
	if *xsFlag != "" {
		for _, field := range strings.Split(*xsFlag, ",") {
			x, err := strconv.ParseFloat(strings.TrimSpace(field), 64)
			if err != nil {
				return fmt.Errorf("-xs: %w", err)
			}
			xs = append(xs, x)
		}
	}

	// SIGINT/SIGTERM stop sweeps cooperatively; completed repetitions are
	// already journaled when -checkpoint is set.
	ctx, stopSignals := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stopSignals()
	if *timeout > 0 {
		var cancelTimeout context.CancelFunc
		ctx, cancelTimeout = context.WithTimeout(ctx, *timeout)
		defer cancelTimeout()
	}

	base := netmodel.ScaledDefaultParams()
	model := spectrum.ModelExact
	if *paperScale {
		base = netmodel.DefaultParams()
		model = spectrum.ModelAggregate
	}
	if *numSU > 0 {
		base.NumSU = *numSU
	}
	if *numPU > 0 {
		base.NumPU = *numPU
	}
	if *area > 0 {
		base.Area = *area
	}

	var figures []string
	switch *fig {
	case "all":
		figures = experiment.FigureIDs
	case "thm1", "thm2":
		return runBounds(*fig, base, *reps, *seed)
	case "ext1":
		return runChannelSweep(base, *reps, *seed, *shareTopo)
	case "ext2":
		return runFaultSweep(ctx, base, *reps, *seed, *shareTopo)
	case "curves":
		svg, err := experiment.DeliveryCurves(base, *seed)
		if err != nil {
			return err
		}
		if *svgDir != "" {
			return os.WriteFile(filepath.Join(*svgDir, "curves.svg"), []byte(svg), 0o644)
		}
		fmt.Println(svg)
		return nil
	default:
		figures = []string{*fig}
	}

	for _, id := range figures {
		sweep, err := experiment.NewFigureSweep(id, base, *seed)
		if err != nil {
			return err
		}
		sweep.Reps = *reps
		sweep.PUModel = model
		sweep.DisableHandoff = !*handoff
		sweep.MaxVirtualTime = *budget
		sweep.SameMAC = *sameMAC
		sweep.Guard = *guard
		sweep.ShareTopology = *shareTopo
		sweep.Workers = *workers
		sweep.FlushBatch = *flushBatch
		sweep.Batch = *batch
		if xs != nil {
			sweep.Xs = xs
		}
		if *checkpoint != "" {
			sweep.Checkpoint = checkpointPath(*checkpoint, id, len(figures) > 1)
			sweep.Resume = *resume
		}
		if *merge {
			// Merge phase: assemble the shard journals into the unsharded
			// journal, then replay it through the sweep's aggregation so the
			// printed summary is the one the merged journal implies — byte
			// for byte what a single-process run prints when coverage is
			// complete.
			if err := mergeShards(sweep, *allowMissing, *csv); err != nil {
				return err
			}
			continue
		}
		if !shard.IsZero() {
			sweep.Shard = shard
			sweep.Checkpoint = experiment.ShardJournalPath(sweep.Checkpoint, shard)
		}
		res, err := sweep.RunContext(ctx)
		if err != nil {
			if res != nil && ctx.Err() != nil {
				// Interrupted: the partial table goes to stderr so stdout
				// stays a clean sequence of completed figures, and the
				// error names the checkpoint to resume from.
				fmt.Fprintf(os.Stderr, "addc-experiments: interrupted; partial fig %s results:\n%s",
					id, res.FormatTable())
			}
			return err
		}
		if *csv {
			fmt.Printf("# fig %s\n%s", id, res.FormatCSV())
		} else {
			fmt.Println(res.FormatTable())
		}
		if *svgDir != "" {
			svg, err := res.SVG()
			if err != nil {
				return fmt.Errorf("render fig %s: %w", id, err)
			}
			path := filepath.Join(*svgDir, "fig"+id+".svg")
			if err := os.WriteFile(path, []byte(svg), 0o644); err != nil {
				return err
			}
		}
	}
	return nil
}

func runChannelSweep(base netmodel.Params, reps int, seed uint64, shareTopo bool) error {
	sweep := experiment.ChannelSweep{
		Base:          base,
		Channels:      []int{1, 2, 3, 4, 6, 8},
		Reps:          reps,
		Seed:          seed,
		ShareTopology: shareTopo,
	}
	res, err := sweep.Run()
	if err != nil {
		return err
	}
	fmt.Print(res.FormatTable())
	return nil
}

func runFaultSweep(ctx context.Context, base netmodel.Params, reps int, seed uint64, shareTopo bool) error {
	sweep := experiment.FaultSweep{
		Base:          base,
		CrashFracs:    []float64{0, 0.05, 0.10, 0.20, 0.30},
		LinkLoss:      0.05,
		Reps:          reps,
		Seed:          seed,
		ShareTopology: shareTopo,
	}
	res, err := sweep.RunContext(ctx)
	if err != nil {
		if res != nil && ctx.Err() != nil {
			fmt.Fprintf(os.Stderr, "addc-experiments: interrupted; partial ext2 results:\n%s", res.FormatTable())
		}
		return err
	}
	fmt.Print(res.FormatTable())
	return nil
}

// mergeShards assembles the shard journals beside sweep.Checkpoint into the
// unsharded journal at sweep.Checkpoint, then replays that journal through
// the sweep's index-order aggregation and prints the summary — byte for
// byte what the single-process run prints when every shard is present.
func mergeShards(sweep *experiment.Sweep, allowMissing, csv bool) error {
	paths, err := experiment.ShardJournalGlob(sweep.Checkpoint)
	if err != nil {
		return err
	}
	if len(paths) == 0 {
		return fmt.Errorf("no shard journals beside %s (shards journal to e.g. %s)",
			sweep.Checkpoint, experiment.ShardJournalPath(sweep.Checkpoint, experiment.ShardSpec{Index: 1, Count: 3}))
	}
	stats, err := experiment.MergeJournals(sweep.Checkpoint, paths, experiment.MergeOptions{AllowMissing: allowMissing})
	if err != nil {
		return err
	}
	if want := sweep.GridHash(); stats.GridHash != want {
		return fmt.Errorf("shard journals were written for grid %s, but these flags describe grid %s: rerun -merge with the same -fig/-reps/-seed/-xs/parameter flags the shards ran with",
			stats.GridHash, want)
	}
	fmt.Fprintf(os.Stderr, "addc-experiments: merged %d journals (%d shards, %d entries, %d duplicate entries dropped) into %s\n",
		len(paths), stats.Shards, stats.Entries, stats.Duplicates, sweep.Checkpoint)
	if n := len(stats.MissingPairs); n > 0 {
		fmt.Fprintf(os.Stderr, "addc-experiments: %d (x, rep) pairs missing — the summary below is partial; resume the failed shards or rerun with -resume on the merged journal\n", n)
	}
	sweep.Resume = true
	sweep.ReplayOnly = true
	res, err := sweep.Run()
	if err != nil {
		return err
	}
	if csv {
		fmt.Printf("# fig %s\n%s", sweep.ID, res.FormatCSV())
	} else {
		fmt.Println(res.FormatTable())
	}
	return nil
}

// checkpointPath derives the journal path for one figure: a multi-figure
// invocation gets a per-figure file (cp.jsonl -> cp-6a.jsonl) so a fresh
// sweep of one figure never truncates another's journal.
func checkpointPath(base, fig string, multi bool) string {
	if !multi {
		return base
	}
	ext := filepath.Ext(base)
	return strings.TrimSuffix(base, ext) + "-" + fig + ext
}

func runBounds(which string, base netmodel.Params, reps int, seed uint64) error {
	check := experiment.BoundsCheck{
		Base:       base,
		StandAlone: which == "thm1",
		Reps:       reps,
		Seed:       seed,
	}
	res, err := check.Run()
	if err != nil {
		return err
	}
	fmt.Print(res.Format())
	return nil
}
