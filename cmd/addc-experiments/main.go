// Command addc-experiments regenerates every evaluation artifact of the
// paper: the six Fig. 6 delay sweeps (ADDC vs Coolest), and the Theorem 1/2
// bound comparisons. Output is a paper-style table per figure, optionally
// CSV.
//
// Usage:
//
//	addc-experiments                  # all of fig 6a..6f at the scaled point
//	addc-experiments -fig 6c          # a single sweep
//	addc-experiments -fig thm1        # Theorem 1 bound check (stand-alone)
//	addc-experiments -fig ext1        # multi-channel extension sweep
//	addc-experiments -fig ext2        # delivery ratio vs fault rate sweep
//	addc-experiments -fig curves      # delivery-progress SVG for one run
//	addc-experiments -fig thm2        # Theorem 2 bound check (with PUs)
//	addc-experiments -paper-scale     # paper-nominal parameters (slow!)
//	addc-experiments -csv             # machine-readable output
//
// Long sweeps are interruptible and resumable: -checkpoint journals every
// completed repetition to a crash-safe JSONL file, SIGINT/SIGTERM or an
// expired -timeout stop the sweep cooperatively (the partial table goes to
// stderr), and -resume picks
// up exactly where the journal stops, reproducing the uninterrupted output
// byte for byte. -guard runs every simulation with runtime invariant guards.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"addcrn/internal/experiment"
	"addcrn/internal/netmodel"
	"addcrn/internal/spectrum"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "addc-experiments:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("addc-experiments", flag.ContinueOnError)
	var (
		fig        = fs.String("fig", "all", "figure to regenerate: 6a..6f, thm1, thm2, or all")
		reps       = fs.Int("reps", 10, "repetitions per sweep point")
		seed       = fs.Uint64("seed", 1, "root seed")
		csv        = fs.Bool("csv", false, "emit CSV instead of tables")
		paperScale = fs.Bool("paper-scale", false, "use the paper's nominal parameters with the aggregate PU model (very slow)")
		handoff    = fs.Bool("handoff", true, "abort transmissions when a PU arrives (spectrum handoff)")
		budget     = fs.Duration("max-virtual", 2*time.Hour, "virtual-time budget per run")
		timeout    = fs.Duration("timeout", 0, "wall-clock budget for the whole invocation (0: none); expiry stops sweeps like SIGINT, printing partial results (combine with -checkpoint to resume)")
		sameMAC    = fs.Bool("same-mac", false, "run Coolest on ADDC's PCR MAC (routing-only ablation)")
		svgDir     = fs.String("svg", "", "directory to also write one SVG chart per figure")
		checkpoint = fs.String("checkpoint", "", "journal completed repetitions to this JSONL file (per-figure suffix added when sweeping several figures)")
		resume     = fs.Bool("resume", false, "with -checkpoint: skip repetitions the journal already records")
		guard      = fs.Bool("guard", false, "run every simulation with runtime invariant guards")
		shareTopo  = fs.Bool("share-topology", false, "memoize deployments and share construction artifacts across grid points and repetitions (changes the placement-seed derivation; each mode is internally deterministic)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *resume && *checkpoint == "" {
		return fmt.Errorf("-resume requires -checkpoint")
	}

	// SIGINT/SIGTERM stop sweeps cooperatively; completed repetitions are
	// already journaled when -checkpoint is set.
	ctx, stopSignals := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stopSignals()
	if *timeout > 0 {
		var cancelTimeout context.CancelFunc
		ctx, cancelTimeout = context.WithTimeout(ctx, *timeout)
		defer cancelTimeout()
	}

	base := netmodel.ScaledDefaultParams()
	model := spectrum.ModelExact
	if *paperScale {
		base = netmodel.DefaultParams()
		model = spectrum.ModelAggregate
	}

	var figures []string
	switch *fig {
	case "all":
		figures = experiment.FigureIDs
	case "thm1", "thm2":
		return runBounds(*fig, base, *reps, *seed)
	case "ext1":
		return runChannelSweep(base, *reps, *seed, *shareTopo)
	case "ext2":
		return runFaultSweep(ctx, base, *reps, *seed, *shareTopo)
	case "curves":
		svg, err := experiment.DeliveryCurves(base, *seed)
		if err != nil {
			return err
		}
		if *svgDir != "" {
			return os.WriteFile(filepath.Join(*svgDir, "curves.svg"), []byte(svg), 0o644)
		}
		fmt.Println(svg)
		return nil
	default:
		figures = []string{*fig}
	}

	for _, id := range figures {
		sweep, err := experiment.NewFigureSweep(id, base, *seed)
		if err != nil {
			return err
		}
		sweep.Reps = *reps
		sweep.PUModel = model
		sweep.DisableHandoff = !*handoff
		sweep.MaxVirtualTime = *budget
		sweep.SameMAC = *sameMAC
		sweep.Guard = *guard
		sweep.ShareTopology = *shareTopo
		if *checkpoint != "" {
			sweep.Checkpoint = checkpointPath(*checkpoint, id, len(figures) > 1)
			sweep.Resume = *resume
		}
		res, err := sweep.RunContext(ctx)
		if err != nil {
			if res != nil && ctx.Err() != nil {
				// Interrupted: the partial table goes to stderr so stdout
				// stays a clean sequence of completed figures, and the
				// error names the checkpoint to resume from.
				fmt.Fprintf(os.Stderr, "addc-experiments: interrupted; partial fig %s results:\n%s",
					id, res.FormatTable())
			}
			return err
		}
		if *csv {
			fmt.Printf("# fig %s\n%s", id, res.FormatCSV())
		} else {
			fmt.Println(res.FormatTable())
		}
		if *svgDir != "" {
			svg, err := res.SVG()
			if err != nil {
				return fmt.Errorf("render fig %s: %w", id, err)
			}
			path := filepath.Join(*svgDir, "fig"+id+".svg")
			if err := os.WriteFile(path, []byte(svg), 0o644); err != nil {
				return err
			}
		}
	}
	return nil
}

func runChannelSweep(base netmodel.Params, reps int, seed uint64, shareTopo bool) error {
	sweep := experiment.ChannelSweep{
		Base:          base,
		Channels:      []int{1, 2, 3, 4, 6, 8},
		Reps:          reps,
		Seed:          seed,
		ShareTopology: shareTopo,
	}
	res, err := sweep.Run()
	if err != nil {
		return err
	}
	fmt.Print(res.FormatTable())
	return nil
}

func runFaultSweep(ctx context.Context, base netmodel.Params, reps int, seed uint64, shareTopo bool) error {
	sweep := experiment.FaultSweep{
		Base:          base,
		CrashFracs:    []float64{0, 0.05, 0.10, 0.20, 0.30},
		LinkLoss:      0.05,
		Reps:          reps,
		Seed:          seed,
		ShareTopology: shareTopo,
	}
	res, err := sweep.RunContext(ctx)
	if err != nil {
		if res != nil && ctx.Err() != nil {
			fmt.Fprintf(os.Stderr, "addc-experiments: interrupted; partial ext2 results:\n%s", res.FormatTable())
		}
		return err
	}
	fmt.Print(res.FormatTable())
	return nil
}

// checkpointPath derives the journal path for one figure: a multi-figure
// invocation gets a per-figure file (cp.jsonl -> cp-6a.jsonl) so a fresh
// sweep of one figure never truncates another's journal.
func checkpointPath(base, fig string, multi bool) string {
	if !multi {
		return base
	}
	ext := filepath.Ext(base)
	return strings.TrimSuffix(base, ext) + "-" + fig + ext
}

func runBounds(which string, base netmodel.Params, reps int, seed uint64) error {
	check := experiment.BoundsCheck{
		Base:       base,
		StandAlone: which == "thm1",
		Reps:       reps,
		Seed:       seed,
	}
	res, err := check.Run()
	if err != nil {
		return err
	}
	fmt.Print(res.Format())
	return nil
}
