// Kill-resume chaos test: a shard worker is SIGKILLed mid-sweep (a real
// process death — no cooperative shutdown, no flushing courtesy), resumed
// from its journal, and the merged output must still be byte-identical to
// an uninterrupted unsharded run. scripts/shard-chaos.sh drives the same
// scenario through the installed binary; this test pins it in `go test`.
package main

import (
	"bytes"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// TestShardWorkerHelper is not a test: it is the subprocess body the chaos
// test SIGKILLs. It re-executes this test binary and routes the args in
// ADDC_SHARD_ARGS (newline-separated, since args carry spaces) into run().
func TestShardWorkerHelper(t *testing.T) {
	if os.Getenv("ADDC_SHARD_HELPER") != "1" {
		t.Skip("subprocess helper; only runs when re-executed by the chaos test")
	}
	args := strings.Split(os.Getenv("ADDC_SHARD_ARGS"), "\n")
	if err := run(args); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	os.Exit(0)
}

func TestKillResumeMergeMatchesUnsharded(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns and kills subprocesses; skipped in -short")
	}
	dir := t.TempDir()
	// -flush-batch 1 persists every completed (x, rep) pair immediately, so
	// the SIGKILL loses at most the pair in flight. -workers 1 pins journal
	// entry order so the byte comparison is meaningful.
	common := []string{
		"-fig", "6c", "-xs", "0.1,0.2", "-reps", "3", "-seed", "7",
		"-num-su", "80", "-area", "55", "-num-pu", "3",
		"-max-virtual", "30m", "-workers", "1", "-flush-batch", "1",
	}

	// Uninterrupted unsharded baseline.
	baseCP := filepath.Join(dir, "baseline.jsonl")
	if err := run(append(append([]string{}, common...), "-checkpoint", baseCP)); err != nil {
		t.Fatalf("baseline run: %v", err)
	}
	want, err := os.ReadFile(baseCP)
	if err != nil {
		t.Fatal(err)
	}
	if len(want) == 0 {
		t.Fatal("baseline journaled nothing; the comparison would be vacuous")
	}

	// Shard 1/2 runs as a real subprocess and takes a SIGKILL as soon as it
	// has journaled its header plus at least one entry.
	cp := filepath.Join(dir, "cp.jsonl")
	shard1 := append(append([]string{}, common...), "-checkpoint", cp, "-shard", "1/2")
	shard1Journal := cp[:len(cp)-len(".jsonl")] + ".shard-1-of-2.jsonl"

	cmd := exec.Command(os.Args[0], "-test.run", "^TestShardWorkerHelper$", "-test.v")
	cmd.Env = append(os.Environ(),
		"ADDC_SHARD_HELPER=1",
		"ADDC_SHARD_ARGS="+strings.Join(shard1, "\n"))
	var out bytes.Buffer
	cmd.Stdout, cmd.Stderr = &out, &out
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(time.Minute)
	for {
		if data, err := os.ReadFile(shard1Journal); err == nil && bytes.Count(data, []byte("\n")) >= 2 {
			break // header + at least one journaled entry: kill now
		}
		if time.Now().After(deadline) {
			cmd.Process.Kill()
			cmd.Wait()
			t.Fatalf("shard subprocess journaled nothing within a minute; output:\n%s", out.String())
		}
		time.Sleep(2 * time.Millisecond)
	}
	// SIGKILL: the process gets no chance to flush, sync or unwind. The
	// shard may legitimately finish before the signal lands; the contract
	// under test (resume + merge == unsharded bytes) holds either way.
	cmd.Process.Kill()
	cmd.Wait()

	// Resume the killed shard in-process; it must replay the journaled pairs
	// and run only what the kill lost.
	if err := run(append(append([]string{}, shard1...), "-resume")); err != nil {
		t.Fatalf("resume of killed shard: %v", err)
	}
	// Shard 2/2 runs uninterrupted.
	if err := run(append(append([]string{}, common...), "-checkpoint", cp, "-shard", "2/2")); err != nil {
		t.Fatalf("shard 2/2: %v", err)
	}
	// Merge validates coverage and assembles the unsharded journal.
	if err := run(append(append([]string{}, common...), "-checkpoint", cp, "-merge")); err != nil {
		t.Fatalf("merge: %v", err)
	}
	got, err := os.ReadFile(cp)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("kill-resume merged journal diverges from uninterrupted unsharded run:\n--- merged\n%s--- baseline\n%s", got, want)
	}
}
