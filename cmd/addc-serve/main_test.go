package main

import (
	"net/http"
	"net/http/httptest"
	"testing"
)

func TestNewLoggerFormats(t *testing.T) {
	for _, format := range []string{"text", "json"} {
		if _, err := newLogger(format); err != nil {
			t.Errorf("newLogger(%q): %v", format, err)
		}
	}
	if _, err := newLogger("yaml"); err == nil {
		t.Error("newLogger accepted an unknown format")
	}
}

// The debug mux serves pprof and nothing else; the main API mux never
// carries /debug/pprof/ (it lives on the opt-in listener only).
func TestDebugHandlerServesPprofOnly(t *testing.T) {
	ts := httptest.NewServer(debugHandler())
	defer ts.Close()

	resp, err := ts.Client().Get(ts.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/debug/pprof/ status = %d, want 200", resp.StatusCode)
	}

	resp, err = ts.Client().Get(ts.URL + "/v1/jobs")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("debug listener serves API routes (status %d), want 404", resp.StatusCode)
	}
}

func TestRunRequiresState(t *testing.T) {
	if err := run([]string{"-addr", "localhost:0"}); err == nil {
		t.Fatal("run without -state succeeded")
	}
	if err := run([]string{"-state", t.TempDir(), "-log-format", "yaml"}); err == nil {
		t.Fatal("run with a bad -log-format succeeded")
	}
}
