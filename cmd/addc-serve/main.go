// Command addc-serve runs the simulation engine as a resilient HTTP/JSON
// daemon: submit figure sweeps as jobs, poll their status, stream their
// repetition journals and lifecycle spans, and fetch results that are
// byte-identical to the addc-experiments CLI's CSV output.
//
// Usage:
//
//	addc-serve -state /var/lib/addc          # listen on :8314
//	addc-serve -addr :9000 -workers 4        # bigger worker pool
//	addc-serve -rate 2 -burst 5              # per-client submission limits
//	addc-serve -log-format json              # machine-readable logs
//	addc-serve -debug-addr localhost:6060    # pprof on a private listener
//
//	curl -s localhost:8314/v1/jobs -d '{"figure":"6c"}'      # -> {"id":"j000000"}
//	curl -s localhost:8314/v1/jobs/j000000                   # status
//	curl -s localhost:8314/v1/jobs/j000000/events            # live JSONL feed
//	curl -s 'localhost:8314/v1/jobs/j000000/result?format=csv'
//	curl -s localhost:8314/metrics                           # Prometheus scrape
//
// The daemon is bounded everywhere: a fixed worker pool, a bounded queue
// (overflow gets 429 + Retry-After), a size-budgeted topology cache, and
// optional per-client token buckets. SIGTERM/SIGINT drain gracefully —
// admission stops, in-flight sweeps get -drain-grace to finish before
// being interrupted at event-loop granularity, everything persists — and a
// restarted daemon resumes unfinished jobs from their journals,
// reproducing the uninterrupted results byte for byte.
//
// Observability: logs are structured (log/slog) on stderr, text by default
// and JSONL with -log-format json; every job-scoped line carries job_id,
// client and state. /metrics serves the Prometheus text exposition and
// /statsz the same snapshot as JSON (deprecated). -debug-addr starts a
// second listener serving net/http/pprof under /debug/pprof/ — keep it off
// public interfaces; it is opt-in precisely because profiles expose
// internals.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"addcrn/internal/serve"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "addc-serve:", err)
		os.Exit(1)
	}
}

// newLogger builds the daemon's stderr logger in the requested format.
func newLogger(format string) (*slog.Logger, error) {
	switch format {
	case "text":
		return slog.New(slog.NewTextHandler(os.Stderr, nil)), nil
	case "json":
		return slog.New(slog.NewJSONHandler(os.Stderr, nil)), nil
	default:
		return nil, fmt.Errorf("-log-format %q: want text or json", format)
	}
}

// debugHandler is the pprof mux served on the opt-in -debug-addr listener.
// Handlers are registered explicitly instead of importing net/http/pprof
// for its DefaultServeMux side effect, so the main API listener never
// exposes profiles.
func debugHandler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

func run(args []string) error {
	fs := flag.NewFlagSet("addc-serve", flag.ContinueOnError)
	var (
		addr       = fs.String("addr", ":8314", "HTTP listen address")
		state      = fs.String("state", "", "state directory for job records, journals and results (required)")
		workers    = fs.Int("workers", 2, "job workers, each owning one reusable simulation workspace")
		queue      = fs.Int("queue", 16, "queued-job bound; submissions beyond it get 429 + Retry-After")
		cacheBytes = fs.Int64("cache-bytes", 64<<20, "topology cache budget in bytes (negative: unbounded)")
		rate       = fs.Float64("rate", 0, "per-client submissions per second (0: unlimited)")
		burst      = fs.Float64("burst", 0, "per-client burst size (default max(rate, 1))")
		drainGrace = fs.Duration("drain-grace", 5*time.Second, "how long a drain lets in-flight jobs finish before interrupting them")
		jobWorkers = fs.Int("job-workers", 1, "max sweep parallelism within one job")
		logFormat  = fs.String("log-format", "text", "structured log format on stderr: text or json")
		debugAddr  = fs.String("debug-addr", "", "optional second listener serving /debug/pprof/ (keep private)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *state == "" {
		return errors.New("-state is required")
	}
	logger, err := newLogger(*logFormat)
	if err != nil {
		return err
	}

	srv, err := serve.New(serve.Config{
		Addr:          *addr,
		Workers:       *workers,
		QueueDepth:    *queue,
		StateDir:      *state,
		CacheBytes:    *cacheBytes,
		RatePerSec:    *rate,
		RateBurst:     *burst,
		DrainGrace:    *drainGrace,
		MaxJobWorkers: *jobWorkers,
		Logger:        logger,
	})
	if err != nil {
		return err
	}
	srv.Start()

	httpSrv := &http.Server{Addr: *addr, Handler: srv.Handler()}
	httpErr := make(chan error, 1)
	go func() {
		if err := httpSrv.ListenAndServe(); !errors.Is(err, http.ErrServerClosed) {
			httpErr <- err
		}
	}()
	logger.Info("listening", "addr", *addr, "state_dir", *state,
		"workers", *workers, "queue", *queue, "log_format", *logFormat)

	var debugSrv *http.Server
	if *debugAddr != "" {
		debugSrv = &http.Server{Addr: *debugAddr, Handler: debugHandler()}
		go func() {
			if err := debugSrv.ListenAndServe(); !errors.Is(err, http.ErrServerClosed) {
				// Diagnostics are optional: losing pprof must not take
				// down the service, but it must be loud in the logs.
				logger.Error("debug listener failed", "addr", *debugAddr, "error", err)
			}
		}()
		logger.Info("pprof enabled", "addr", *debugAddr)
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-httpErr:
		return err
	case got := <-sig:
		logger.Info("signal received, draining", "signal", got.String(), "grace", drainGrace.String())
	}

	// Drain order: stop admission and finish/checkpoint jobs first, then
	// close the listener — status polls keep working through the drain.
	srv.Drain(*drainGrace)
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(shutdownCtx); err != nil {
		httpSrv.Close()
	}
	if debugSrv != nil {
		debugSrv.Close()
	}
	logger.Info("drained cleanly")
	return nil
}
