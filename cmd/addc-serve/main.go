// Command addc-serve runs the simulation engine as a resilient HTTP/JSON
// daemon: submit figure sweeps as jobs, poll their status, stream their
// repetition journals, and fetch results that are byte-identical to the
// addc-experiments CLI's CSV output.
//
// Usage:
//
//	addc-serve -state /var/lib/addc          # listen on :8314
//	addc-serve -addr :9000 -workers 4        # bigger worker pool
//	addc-serve -rate 2 -burst 5              # per-client submission limits
//
//	curl -s localhost:8314/v1/jobs -d '{"figure":"6c"}'      # -> {"id":"j000000"}
//	curl -s localhost:8314/v1/jobs/j000000                   # status
//	curl -s localhost:8314/v1/jobs/j000000/events            # live JSONL feed
//	curl -s 'localhost:8314/v1/jobs/j000000/result?format=csv'
//
// The daemon is bounded everywhere: a fixed worker pool, a bounded queue
// (overflow gets 429 + Retry-After), a size-budgeted topology cache, and
// optional per-client token buckets. SIGTERM/SIGINT drain gracefully —
// admission stops, in-flight sweeps get -drain-grace to finish before
// being interrupted at event-loop granularity, everything persists — and a
// restarted daemon resumes unfinished jobs from their journals,
// reproducing the uninterrupted results byte for byte.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"addcrn/internal/serve"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "addc-serve:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("addc-serve", flag.ContinueOnError)
	var (
		addr       = fs.String("addr", ":8314", "HTTP listen address")
		state      = fs.String("state", "", "state directory for job records, journals and results (required)")
		workers    = fs.Int("workers", 2, "job workers, each owning one reusable simulation workspace")
		queue      = fs.Int("queue", 16, "queued-job bound; submissions beyond it get 429 + Retry-After")
		cacheBytes = fs.Int64("cache-bytes", 64<<20, "topology cache budget in bytes (negative: unbounded)")
		rate       = fs.Float64("rate", 0, "per-client submissions per second (0: unlimited)")
		burst      = fs.Float64("burst", 0, "per-client burst size (default max(rate, 1))")
		drainGrace = fs.Duration("drain-grace", 5*time.Second, "how long a drain lets in-flight jobs finish before interrupting them")
		jobWorkers = fs.Int("job-workers", 1, "max sweep parallelism within one job")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *state == "" {
		return errors.New("-state is required")
	}

	srv, err := serve.New(serve.Config{
		Addr:          *addr,
		Workers:       *workers,
		QueueDepth:    *queue,
		StateDir:      *state,
		CacheBytes:    *cacheBytes,
		RatePerSec:    *rate,
		RateBurst:     *burst,
		DrainGrace:    *drainGrace,
		MaxJobWorkers: *jobWorkers,
	})
	if err != nil {
		return err
	}
	srv.Start()

	httpSrv := &http.Server{Addr: *addr, Handler: srv.Handler()}
	httpErr := make(chan error, 1)
	go func() {
		if err := httpSrv.ListenAndServe(); !errors.Is(err, http.ErrServerClosed) {
			httpErr <- err
		}
	}()
	fmt.Fprintf(os.Stderr, "addc-serve: listening on %s, state in %s\n", *addr, *state)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-httpErr:
		return err
	case got := <-sig:
		fmt.Fprintf(os.Stderr, "addc-serve: %s, draining (grace %s)\n", got, *drainGrace)
	}

	// Drain order: stop admission and finish/checkpoint jobs first, then
	// close the listener — status polls keep working through the drain.
	srv.Drain(*drainGrace)
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(shutdownCtx); err != nil {
		httpSrv.Close()
	}
	fmt.Fprintln(os.Stderr, "addc-serve: drained cleanly")
	return nil
}
