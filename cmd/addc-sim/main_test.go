package main

import "testing"

func TestRunADDCSmall(t *testing.T) {
	err := run([]string{"-n", "100", "-N", "3", "-area", "60", "-seed", "2"})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRunCoolestSmall(t *testing.T) {
	err := run([]string{"-n", "100", "-N", "3", "-area", "60", "-seed", "2", "-alg", "coolest"})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRunAggregateModel(t *testing.T) {
	err := run([]string{"-n", "100", "-N", "3", "-area", "60", "-pu-model", "aggregate"})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRunWithFaults(t *testing.T) {
	err := run([]string{"-n", "100", "-N", "3", "-area", "60", "-seed", "2",
		"-fault-crash", "0.1", "-fault-crash-window", "500ms", "-fault-loss", "0.05"})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRunRejectsBadInputs(t *testing.T) {
	cases := [][]string{
		{"-alg", "bogus", "-n", "100", "-N", "3", "-area", "60"},
		{"-pu-model", "bogus", "-n", "100", "-N", "3", "-area", "60"},
		{"-alpha", "1.0"},
		{"-not-a-flag"},
		{"-n", "100", "-N", "3", "-area", "60", "-fault-crash", "1.5"},
	}
	for _, args := range cases {
		if err := run(args); err == nil {
			t.Errorf("args %v accepted", args)
		}
	}
}
