// Command addc-sim runs a single data collection simulation from command
// line flags and prints the measured result, optionally for the Coolest
// baseline instead of ADDC. The -fault-* flags inject SU crashes, link/ACK
// loss and PU burst storms (see internal/fault); the run then reports its
// outcome, delivery ratio and fault counters.
//
// SIGINT/SIGTERM cancel the run cooperatively: the partial delivery state
// is reported on stderr before exiting nonzero. -timeout imposes the same
// cooperative cancellation on a wall-clock budget.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime/pprof"
	"syscall"
	"time"

	"addcrn/internal/coolest"
	"addcrn/internal/core"
	"addcrn/internal/fault"
	"addcrn/internal/metrics"
	"addcrn/internal/netmodel"
	"addcrn/internal/pcr"
	"addcrn/internal/spectrum"
	"addcrn/internal/trace"
)

// writeMetrics dumps the registry's full snapshot (wall timings included) as
// indented JSON.
func writeMetrics(path string, reg *metrics.Registry) error {
	data, err := reg.Snapshot().Marshal()
	if err != nil {
		return err
	}
	return os.WriteFile(path, data, 0o644)
}

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "addc-sim:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("addc-sim", flag.ContinueOnError)
	base := netmodel.ScaledDefaultParams()
	var (
		area    = fs.Float64("area", base.Area, "deployment square side (m)")
		alpha   = fs.Float64("alpha", base.Alpha, "path loss exponent")
		numPU   = fs.Int("N", base.NumPU, "number of primary users")
		numSU   = fs.Int("n", base.NumSU, "number of secondary users")
		powerPU = fs.Float64("Pp", base.PowerPU, "PU power")
		powerSU = fs.Float64("Ps", base.PowerSU, "SU power")
		radPU   = fs.Float64("R", base.RadiusPU, "PU radius (m)")
		radSU   = fs.Float64("r", base.RadiusSU, "SU radius (m)")
		etaPU   = fs.Float64("etaP", base.SIRThresholdPUdB, "PU SIR threshold (dB)")
		etaSU   = fs.Float64("etaS", base.SIRThresholdSUdB, "SU SIR threshold (dB)")
		pt      = fs.Float64("pt", base.ActiveProb, "PU per-slot activity probability")
		seed    = fs.Uint64("seed", 1, "run seed")
		runs    = fs.Int("runs", 1, "repeat the simulation with seeds seed, seed+1, ... reusing one simulation workspace between runs")
		batch   = fs.Int("batch", 1, "execute -runs in lockstep blocks of this size through the lane-batched engine; each block shares the deployment built from its first seed (changes placement per run, like a sweep's block seeding), while collection seeds stay seed, seed+1, ...")
		alg     = fs.String("alg", "addc", "algorithm: addc or coolest")
		model   = fs.String("pu-model", "exact", "PU model: exact or aggregate")
		budget  = fs.Duration("max-virtual", 30*time.Minute, "virtual-time budget")
		timeout = fs.Duration("timeout", 0, "wall-clock budget for the whole invocation (0: none); expiry interrupts the run like SIGINT, reporting the partial delivery state")
		handoff = fs.Bool("handoff", true, "abort transmissions on PU arrival")
		guard   = fs.Bool("guard", false, "enable runtime invariant guards (concurrent-set separation, tree integrity, packet conservation)")

		metricsOut = fs.String("metrics-out", "", "write a JSON metrics snapshot to this file")
		traceOut   = fs.String("trace-out", "", "stream the run's trace as JSONL to this file")
		traceMAC   = fs.Bool("trace-mac", false, "with -trace-out: also record every transmission and backoff draw (high volume)")
		pprofOut   = fs.String("pprof", "", "write a CPU profile to this file")

		faultCrash    = fs.Float64("fault-crash", 0, "fraction of SUs that crash (0 disables)")
		faultWindow   = fs.Duration("fault-crash-window", 0, "virtual window the crashes land in (0: fault package default)")
		faultRecover  = fs.Duration("fault-recover", 0, "bring crashed SUs back after this long (0: crashed forever)")
		faultLoss     = fs.Float64("fault-loss", 0, "per-transmission link loss probability")
		faultAckLoss  = fs.Float64("fault-ack-loss", 0, "per-transmission ACK loss probability")
		faultBursts   = fs.Int("fault-bursts", 0, "number of PU burst storms")
		faultBurstLen = fs.Duration("fault-burst-len", 0, "burst storm duration (0: fault package default)")
		faultRetryCap = fs.Int("fault-retry-cap", 0, "per-packet retransmission cap (0: MAC default)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *runs < 1 {
		return fmt.Errorf("-runs must be at least 1, got %d", *runs)
	}
	if *batch < 1 {
		return fmt.Errorf("-batch must be at least 1, got %d", *batch)
	}
	if *runs > 1 && (*metricsOut != "" || *traceOut != "") {
		return fmt.Errorf("-runs > 1 does not combine with -metrics-out or -trace-out")
	}

	params := base
	params.Area = *area
	params.Alpha = *alpha
	params.NumPU = *numPU
	params.NumSU = *numSU
	params.PowerPU = *powerPU
	params.PowerSU = *powerSU
	params.RadiusPU = *radPU
	params.RadiusSU = *radSU
	params.SIRThresholdPUdB = *etaPU
	params.SIRThresholdSUdB = *etaSU
	params.ActiveProb = *pt

	var kind spectrum.ModelKind
	switch *model {
	case "exact":
		kind = spectrum.ModelExact
	case "aggregate":
		kind = spectrum.ModelAggregate
	default:
		return fmt.Errorf("unknown PU model %q", *model)
	}

	cfg := core.CollectConfig{
		PUModel:        kind,
		MaxVirtualTime: *budget,
		DisableHandoff: !*handoff,
		Guard:          *guard,
	}
	spec := fault.Spec{
		CrashFrac:    *faultCrash,
		CrashWindow:  *faultWindow,
		RecoverAfter: *faultRecover,
		LinkLoss:     *faultLoss,
		AckLoss:      *faultAckLoss,
		Bursts:       *faultBursts,
		BurstLen:     *faultBurstLen,
		RetryCap:     *faultRetryCap,
	}
	if !spec.Zero() {
		cfg.Faults = &spec
	}

	var reg *metrics.Registry
	if *metricsOut != "" {
		reg = metrics.NewRegistry()
		cfg.Metrics = reg
	}
	var sink *trace.JSONLSink
	if *traceOut != "" {
		f, err := os.Create(*traceOut)
		if err != nil {
			return err
		}
		defer f.Close()
		sink = trace.NewJSONLSink(f)
		cfg.Sink = sink
		cfg.TraceMAC = *traceMAC
	}
	if *pprofOut != "" {
		f, err := os.Create(*pprofOut)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return err
		}
		defer pprof.StopCPUProfile()
	}

	// SIGINT/SIGTERM cancel the simulation at event-loop granularity; the
	// partial result still flushes traces and metrics below.
	ctx, stopSignals := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stopSignals()
	if *timeout > 0 {
		var cancelTimeout context.CancelFunc
		ctx, cancelTimeout = context.WithTimeout(ctx, *timeout)
		defer cancelTimeout()
	}

	// setup resolves one deployment and the algorithm's routing structure on
	// it. The returned config still needs its per-run Seed.
	setup := func(topoSeed uint64) (*netmodel.Network, []int32, core.CollectConfig, error) {
		nw, err := core.BuildNetwork(core.Options{
			Params:         params,
			Seed:           topoSeed,
			PUModel:        kind,
			MaxVirtualTime: *budget,
		})
		if err != nil {
			return nil, nil, cfg, err
		}
		runCfg := cfg
		var parents []int32
		switch *alg {
		case "addc":
			tree, err := core.BuildTree(nw)
			if err != nil {
				return nil, nil, cfg, err
			}
			parents = tree.Parent
			runCfg.Tree = tree // repair prefers dominators/connectors
		case "coolest":
			consts, err := pcr.Compute(params)
			if err != nil {
				return nil, nil, cfg, err
			}
			parents, err = coolest.BuildParents(nw, consts.Range, coolest.MetricAccumulated)
			if err != nil {
				return nil, nil, cfg, err
			}
		default:
			return nil, nil, cfg, fmt.Errorf("unknown algorithm %q", *alg)
		}
		return nw, parents, runCfg, nil
	}

	// report prints one run's outcome, or its cancellation state on stderr.
	report := func(runSeed uint64, res *core.Result, err error, last bool) error {
		var ce *core.CanceledError
		if errors.As(err, &ce) {
			fmt.Fprintf(os.Stderr, "addc-sim: interrupted at %v (virtual): %d/%d delivered, %d lost\n",
				ce.Elapsed.Duration(), ce.Delivered, ce.Expected, ce.Lost)
			if res != nil && res.Guard != nil {
				fmt.Fprintf(os.Stderr, "addc-sim: guard: %d checks, %d violations before interruption\n",
					res.Guard.ConcurrencyChecks+res.Guard.TreeChecks+res.Guard.ConservationChecks,
					res.Guard.ViolationCount())
			}
			return err
		}
		if err != nil {
			return err
		}
		fmt.Printf("algorithm=%s n=%d N=%d pt=%.2f alpha=%.1f seed=%d pu-model=%s\n",
			*alg, params.NumSU, params.NumPU, params.ActiveProb, params.Alpha, runSeed, kind)
		fmt.Printf("PCR: kappa=%.3f range=%.1fm\n", res.PCR.Kappa, res.PCR.Range)
		fmt.Printf("delivered %d/%d in %v (%.0f slots)\n",
			res.Delivered, res.Expected, res.Delay.Duration(), res.DelaySlots)
		fmt.Printf("capacity %.1f kbit/s, transmissions=%d, aborts=%d\n",
			res.Capacity/1e3, res.TotalTransmissions, res.TotalAborts)
		fmt.Printf("hops: %s\n", res.HopStats)
		fmt.Printf("latency(slots): %s\n", res.LatencySlots)
		fmt.Printf("engine steps: %d\n", res.EngineSteps)
		if th := res.Theory; th != nil {
			fmt.Printf("theorem1 bound %.0f slots, service tightness %.3f, per-hop tightness %.3f\n",
				th.Theorem1Slots, th.ServiceTightness, th.PerHopTightness)
		}
		if g := res.Guard; g != nil {
			fmt.Printf("guard: concurrency=%d tree=%d conservation=%d checks, %d violations\n",
				g.ConcurrencyChecks, g.TreeChecks, g.ConservationChecks, g.ViolationCount())
		}
		if res.Fault != nil {
			fmt.Printf("outcome=%s delivery-ratio=%.3f lost=%d\n", res.Outcome, res.DeliveryRatio, res.Lost)
			fr := res.Fault
			fmt.Printf("faults: crashes=%d recoveries=%d repairs=%d link-losses=%d ack-losses=%d retries=%d drops=%d\n",
				fr.Crashes, fr.Recoveries, fr.Repairs, fr.LinkLosses, fr.AckLosses, fr.Retries, fr.Drops)
		}
		if !last {
			fmt.Println()
		}
		return nil
	}

	// Repeated runs (-runs > 1) share one workspace: the event arena, MAC
	// state and scratch buffers are wiped in place between runs instead of
	// reallocated, matching the sweep layer's per-worker engine reuse.
	ws := core.NewWorkspace()
	if *batch > 1 {
		// Lane-batched: blocks of -batch runs execute in lockstep through
		// one interleaved event loop, sharing the deployment built from the
		// block's first seed. Collection seeds stay seed, seed+1, ...
		for b0 := 0; b0 < *runs; b0 += *batch {
			bn := min(b0+*batch, *runs)
			nw, parents, runCfg, err := setup(*seed + uint64(b0))
			if err != nil {
				return err
			}
			runCfg.Workspace = ws
			// reg and sink are non-nil only for a single run, which is a
			// single lane. A typed-nil *JSONLSink must not reach the
			// interface field.
			var laneSink trace.Sink
			if sink != nil {
				laneSink = sink
			}
			lanes := make([]core.Lane, bn-b0)
			for j := range lanes {
				lanes[j] = core.Lane{Seed: *seed + uint64(b0+j), Metrics: reg, Sink: laneSink}
			}
			out, err := core.CollectBatch(ctx, nw, parents, runCfg, lanes)
			if sink != nil && err == nil {
				err = sink.Flush()
			}
			if reg != nil && err == nil {
				err = writeMetrics(*metricsOut, reg)
			}
			if err != nil {
				return err
			}
			for j, lr := range out {
				if err := report(*seed+uint64(b0+j), lr.Result, lr.Err, bn == *runs && j == len(out)-1); err != nil {
					return err
				}
			}
		}
		return nil
	}
	for i := 0; i < *runs; i++ {
		runSeed := *seed + uint64(i)
		nw, parents, runCfg, err := setup(runSeed)
		if err != nil {
			return err
		}
		runCfg.Seed = runSeed
		runCfg.Workspace = ws

		res, err := core.CollectContext(ctx, nw, parents, runCfg)
		if sink != nil {
			if ferr := sink.Flush(); ferr != nil && err == nil {
				err = ferr
			}
		}
		if reg != nil {
			if werr := writeMetrics(*metricsOut, reg); werr != nil && err == nil {
				err = werr
			}
		}
		if err := report(runSeed, res, err, i+1 == *runs); err != nil {
			return err
		}
	}
	return nil
}
