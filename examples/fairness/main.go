// Command fairness demonstrates Algorithm 1's fairness mechanism (the
// tau_c - t_i post-transmission wait) in the exact regime of Theorem 1's
// proof: two backlogged secondary users within each other's carrier-sensing
// range competing for one spectrum. Property P promises that between two
// consecutive transmissions of one node, the other transmits at most 2
// packets; the demonstration measures the longest transmission burst either
// node achieves, with and without the fairness wait.
package main

import (
	"fmt"
	"log"

	"addcrn/internal/geom"
	"addcrn/internal/mac"
	"addcrn/internal/netmodel"
	"addcrn/internal/rng"
	"addcrn/internal/sim"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	fmt.Println("two backlogged SUs within sensing range, stand-alone network")
	fmt.Printf("%-34s %-14s %-18s %-14s\n",
		"configuration", "max burst", "tx split (A/B)", "delay (slots)")
	for _, fair := range []bool{true, false} {
		burst, txA, txB, delay, err := measure(!fair)
		if err != nil {
			return err
		}
		label := "with fairness wait (ADDC)"
		if !fair {
			label = "without fairness wait (greedy)"
		}
		fmt.Printf("%-34s %-14d %7d/%-10d %10.0f\n", label, burst, txA, txB, delay)
	}
	fmt.Println("\nProperty P (Theorem 1): with the fairness wait no node ever sends")
	fmt.Println("more than 2 packets between its competitor's consecutive accesses.")
	return nil
}

// measure runs 400 packets through each of two adjacent nodes and returns
// the maximum consecutive-transmission burst by either node, the final
// transmission counts and the drain time in slots.
func measure(noWait bool) (burst, txA, txB int, delaySlots float64, err error) {
	p := netmodel.ScaledDefaultParams()
	p.Area = 250
	p.NumSU = 2
	p.NumPU = 0
	su := []geom.Point{{X: 125, Y: 125}, {X: 120, Y: 125}, {X: 130, Y: 125}}
	nw, err := netmodel.NewCustomNetwork(p, su, nil)
	if err != nil {
		return 0, 0, 0, 0, err
	}
	eng := sim.New()
	delivered := 0
	var order []int32
	m, err := mac.New(mac.Config{
		Network:        nw,
		Parent:         []int32{-1, 0, 0},
		PUSenseRange:   39,
		SUSenseRange:   39,
		Engine:         eng,
		Rand:           rng.New(17),
		NoFairnessWait: noWait,
		OnDeliver:      func(mac.Packet, sim.Time) { delivered++ },
		OnTxEnd: func(node int32, _ sim.Time, completed bool) {
			if completed {
				order = append(order, node)
			}
		},
	})
	if err != nil {
		return 0, 0, 0, 0, err
	}
	const packets = 400
	for i := 0; i < packets; i++ {
		m.Enqueue(1, mac.Packet{Origin: 1})
		m.Enqueue(2, mac.Packet{Origin: 2})
	}
	for delivered < 2*packets {
		if !eng.Step() {
			return 0, 0, 0, 0, fmt.Errorf("simulation stalled at %d deliveries", delivered)
		}
	}
	run := 0
	var last int32 = -1
	for _, node := range order {
		if node == last {
			run++
		} else {
			run = 1
			last = node
		}
		if run > burst {
			burst = run
		}
	}
	txA = m.Stats(1).Transmissions
	txB = m.Stats(2).Transmissions
	slot := sim.FromDuration(p.Slot)
	return burst, txA, txB, float64(eng.Now()) / float64(slot), nil
}
