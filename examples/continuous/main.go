// Command continuous demonstrates the continuous data collection extension:
// the network produces a snapshot every interval and ADDC drains them
// concurrently. Sweeping the interval locates the sustainable rate — above
// it per-snapshot delay is flat, below it backlog accumulates round over
// round (the pipelined regime of the paper's companion works).
package main

import (
	"fmt"
	"log"
	"time"

	"addcrn/internal/core"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	base := core.DefaultOptions()
	base.Params.NumSU = 150
	base.Params.Area = 70
	base.Params.NumPU = 4
	base.Seed = 5

	fmt.Println("continuous collection: per-snapshot delay vs generation interval")
	fmt.Printf("%-14s %-16s %-12s %-12s %-14s\n",
		"interval", "mean delay", "first", "last", "capacity")

	for _, interval := range []time.Duration{
		20 * time.Second, 10 * time.Second, 5 * time.Second, 2 * time.Second,
	} {
		res, err := core.RunContinuous(core.ContinuousOptions{
			Options:   base,
			Snapshots: 5,
			Interval:  interval,
		})
		if err != nil {
			return err
		}
		fmt.Printf("%-14v %10.0f slots %8.0f %12.0f %10.1f kbit/s\n",
			interval, res.SnapshotDelaySlots.Mean,
			res.FirstDelaySlots, res.LastDelaySlots, res.SustainedCapacity/1e3)
	}
	fmt.Println("\nlast >> first at short intervals = backlog growth: the interval is")
	fmt.Println("below the network's sustainable collection rate.")
	return nil
}
