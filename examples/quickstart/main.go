// Command quickstart is the minimal end-to-end use of the library: deploy a
// cognitive radio network, build the CDS data collection tree, run ADDC,
// and print the headline metrics (Fig. 2's construction stages and one data
// collection run).
package main

import (
	"fmt"
	"log"

	"addcrn/internal/core"
	"addcrn/internal/theory"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	opts := core.DefaultOptions()
	opts.Seed = 42

	fmt.Println("ADDC quickstart")
	fmt.Printf("  area %.0fx%.0f, n=%d SUs, N=%d PUs, p_t=%.2f, alpha=%.1f\n",
		opts.Params.Area, opts.Params.Area, opts.Params.NumSU, opts.Params.NumPU,
		opts.Params.ActiveProb, opts.Params.Alpha)

	bounds, err := theory.ComputeBounds(opts.Params)
	if err != nil {
		return err
	}
	fmt.Printf("  PCR: kappa=%.3f  range=%.1fm  p_o=%.4f (Lemma 7)\n",
		bounds.Kappa, bounds.PCR, bounds.OpportunityProb)

	res, err := core.Run(opts)
	if err != nil {
		return err
	}

	fmt.Println("\nCDS data collection tree (paper Fig. 2 stages):")
	fmt.Printf("  dominators=%d  connectors=%d  dominatees=%d  depth=%d  max tree degree=%d\n",
		res.TreeStats.NumDominators, res.TreeStats.NumConnectors,
		res.TreeStats.NumDominatees, res.TreeStats.Depth, res.TreeStats.MaxDegree)
	fmt.Printf("  max connectors adjacent to a dominator: %d (Lemma 1 bound: 12)\n",
		res.TreeStats.MaxConnectorAdj)

	fmt.Println("\nData collection run:")
	fmt.Printf("  delivered %d/%d packets\n", res.Delivered, res.Expected)
	fmt.Printf("  delay: %v (%.0f slots)\n", res.Delay.Duration(), res.DelaySlots)
	fmt.Printf("  capacity: %.1f kbit/s (upper bound W=%.1f kbit/s)\n",
		res.Capacity/1e3, opts.Params.Bandwidth()/1e3)
	fmt.Printf("  transmissions=%d aborts=%d (PU handoffs)\n",
		res.TotalTransmissions, res.TotalAborts)
	fmt.Printf("  per-packet hops: %s\n", res.HopStats)
	fmt.Printf("  fairness (Jain over per-node transmissions): %.3f\n", res.FairnessIndex)
	fmt.Printf("  max per-packet service: %.0f slots (Theorem 1 bound: %.0f slots)\n",
		res.MaxServiceSlots, bounds.Theorem1Slots)
	return nil
}
