// Command faulttolerance demonstrates the fault-injection subsystem: the
// same topology is collected three times — fault-free, under crashes and
// link loss WITHOUT recovery, and with crashed nodes recovering mid-run —
// and the outcomes are compared. Crashed relays orphan whole subtrees; the
// self-healing repair rule re-parents them onto live dominators/connectors,
// so the network degrades gracefully (a delivery ratio, not a timeout).
package main

import (
	"fmt"
	"log"
	"time"

	"addcrn/internal/core"
	"addcrn/internal/fault"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	opts := core.DefaultOptions()
	opts.Seed = 21
	opts.Params.NumSU = 200
	opts.Params.Area = 80

	scenarios := []struct {
		name string
		spec *fault.Spec
	}{
		{"fault-free", nil},
		{"10% crashes + 5% loss", &fault.Spec{
			CrashFrac:   0.10,
			CrashWindow: 500 * time.Millisecond,
			LinkLoss:    0.05,
		}},
		{"same, nodes recover after 2s", &fault.Spec{
			CrashFrac:    0.10,
			CrashWindow:  500 * time.Millisecond,
			LinkLoss:     0.05,
			RecoverAfter: 2 * time.Second,
		}},
	}

	fmt.Printf("%-28s %-10s %-10s %-9s %-9s %-9s %s\n",
		"scenario", "outcome", "delivery", "crashes", "repairs", "drops", "delay(slots)")
	for _, sc := range scenarios {
		o := opts
		o.Faults = sc.spec
		res, err := core.Run(o)
		if err != nil {
			return fmt.Errorf("%s: %w", sc.name, err)
		}
		crashes, repairs, drops := 0, 0, 0
		if res.Fault != nil {
			crashes, repairs, drops = res.Fault.Crashes, res.Fault.Repairs, res.Fault.Drops
		}
		fmt.Printf("%-28s %-10s %-10.3f %-9d %-9d %-9d %.0f\n",
			sc.name, res.Outcome, res.DeliveryRatio, crashes, repairs, drops, res.DelaySlots)
	}

	fmt.Println("\nCrashes without recovery destroy the victims' queued packets and force")
	fmt.Println("orphaned subtrees through the repair rule; with recovery the relays come")
	fmt.Println("back empty-handed and the bounded retries bridge the outage.")
	return nil
}
