// Command scaling studies how ADDC's data collection delay grows with the
// network size n at fixed density (the regime of Theorem 2: delay = O(n)
// at constant p_o), overlaying the measured delays with the theoretical
// bound so the order-optimality claim can be eyeballed.
package main

import (
	"fmt"
	"log"
	"math"
	"time"

	"addcrn/internal/core"
	"addcrn/internal/netmodel"
	"addcrn/internal/spectrum"
	"addcrn/internal/stats"
	"addcrn/internal/theory"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	base := netmodel.ScaledDefaultParams()
	const reps = 3

	fmt.Println("ADDC delay scaling at fixed density (Theorem 2: O(n))")
	fmt.Printf("%-8s %-8s %-14s %-16s %-14s\n", "n", "N", "delay(slots)", "bound(slots)", "slots/packet")

	var lastPerPacket float64
	for _, scale := range []float64{0.5, 1.0, 1.5, 2.0} {
		p := base
		// Hold both SU and PU density constant: area scales with n.
		factor := math.Sqrt(scale)
		p.Area = base.Area * factor
		p.NumSU = int(float64(base.NumSU) * scale)
		p.NumPU = int(float64(base.NumPU) * scale)

		var delays []float64
		for rep := 0; rep < reps; rep++ {
			res, err := core.Run(core.Options{
				Params:         p,
				Seed:           uint64(1000*scale) + uint64(rep),
				PUModel:        spectrum.ModelExact,
				MaxVirtualTime: 60 * time.Minute,
			})
			if err != nil {
				return err
			}
			delays = append(delays, res.DelaySlots)
		}
		sum := stats.Summarize(delays)
		bounds, err := theory.ComputeBounds(p)
		if err != nil {
			return err
		}
		perPacket := sum.Mean / float64(p.NumSU)
		fmt.Printf("%-8d %-8d %10.0f     %12.0f     %10.2f\n",
			p.NumSU, p.NumPU, sum.Mean, bounds.Theorem2Slots, perPacket)
		lastPerPacket = perPacket
	}
	fmt.Printf("\nper-packet delay stays O(1) as n grows (last: %.2f slots/packet),\n", lastPerPacket)
	fmt.Println("matching Theorem 2's linear total delay / order-optimal capacity.")
	return nil
}
