// Command observability demonstrates the instrumentation layer: it runs one
// ADDC collection with a metrics registry and a streaming JSONL trace sink
// attached, then prints the Theorem 1 bound-tightness ratio (observed worst
// per-packet service over the analytical bound), the phase timing split, and
// a selection of the recorded instruments. The whole report — wall-clock
// phase timings aside — is deterministic in the seed.
package main

import (
	"bytes"
	"fmt"
	"log"

	"addcrn/internal/core"
	"addcrn/internal/metrics"
	"addcrn/internal/trace"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	opts := core.DefaultOptions()
	opts.Seed = 42
	reg := metrics.NewRegistry()
	opts.Metrics = reg
	var jsonl bytes.Buffer
	sink := trace.NewJSONLSink(&jsonl)
	opts.Sink = sink

	fmt.Println("ADDC observability example")
	fmt.Printf("  n=%d SUs, N=%d PUs, p_t=%.2f, seed=%d\n",
		opts.Params.NumSU, opts.Params.NumPU, opts.Params.ActiveProb, opts.Seed)

	res, err := core.Run(opts)
	if err != nil {
		return err
	}
	if err := sink.Flush(); err != nil {
		return err
	}

	fmt.Printf("\nDelivered %d/%d packets in %.0f slots.\n",
		res.Delivered, res.Expected, res.DelaySlots)

	th := res.Theory
	if th == nil {
		return fmt.Errorf("run produced no theory report")
	}
	fmt.Println("\nTheorem 1 bound vs observation:")
	degree := "Lemma 6 high-probability degree"
	if th.RealizedDegree {
		degree = "realized max tree degree"
	}
	fmt.Printf("  bound: %.0f slots per packet service (using %s)\n", th.Theorem1Slots, degree)
	fmt.Printf("  observed worst service: %.0f slots\n", th.MaxServiceSlots)
	fmt.Printf("  bound-tightness ratio: %.3f (<= 1 means the bound held)\n", th.ServiceTightness)
	fmt.Printf("  per-hop waits: mean %.1f, max %.1f slots (tightness %.3f)\n",
		th.MeanPerHopWaitSlots, th.MaxPerHopWaitSlots, th.PerHopTightness)

	snap := reg.Snapshot()
	fmt.Println("\nPhase timings (virtual):")
	for _, g := range snap.Gauges {
		if g.Name == "phase_virtual_us" {
			fmt.Printf("  %-14s %12.0f us\n", g.Labels["phase"], g.Value)
		}
	}

	fmt.Println("\nSelected instruments:")
	for _, c := range snap.Counters {
		switch c.Name {
		case "mac_contention_wins_total", "mac_contention_losses_total",
			"mac_handoffs_total", "core_deliveries_total":
			fmt.Printf("  %-28s %d\n", c.Name, c.Value)
		}
	}
	for _, g := range snap.Gauges {
		if g.Name == "spectrum_pu_busy_fraction" || g.Name == "core_fairness_jain" {
			fmt.Printf("  %-28s %.3f\n", g.Name, g.Value)
		}
	}
	for _, h := range snap.Histograms {
		if h.Name == "core_delivery_latency_slots" {
			fmt.Printf("  %-28s n=%d mean=%.0f max=%.0f slots\n",
				h.Name, h.Count, h.Sum/float64(h.Count), h.Max)
		}
	}

	fmt.Printf("\nJSONL trace: %d records streamed (%d bytes); first record:\n  %s\n",
		sink.Len(), jsonl.Len(), firstLine(jsonl.Bytes()))
	return nil
}

func firstLine(b []byte) []byte {
	if i := bytes.IndexByte(b, '\n'); i >= 0 {
		return b[:i]
	}
	return b
}
