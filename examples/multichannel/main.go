// Command multichannel demonstrates the multi-channel extension: the same
// deployment collected over 1, 2, 4 and 8 licensed channels, with both
// home-channel assignment policies, showing the spatial-reuse gain and the
// single-radio deafness cost.
package main

import (
	"fmt"
	"log"

	"addcrn/internal/multichannel"
	"addcrn/internal/netmodel"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	params := netmodel.ScaledDefaultParams()
	params.NumSU = 200
	params.Area = 85
	params.NumPU = 8

	fmt.Println("multi-channel ADDC: delay vs licensed channel count")
	fmt.Printf("%-10s %-14s %-16s %-16s\n", "channels", "assignment", "delay (slots)", "deafness losses")
	for _, channels := range []int{1, 2, 4, 8} {
		for _, assign := range []multichannel.AssignMode{
			multichannel.AssignRoundRobin, multichannel.AssignLeastPU,
		} {
			res, err := multichannel.Run(multichannel.Options{
				Params:   params,
				Channels: channels,
				Assign:   assign,
				Seed:     3,
			})
			if err != nil {
				return err
			}
			fmt.Printf("%-10d %-14v %12.0f %16d\n",
				channels, assign, res.DelaySlots, res.DeafnessLosses)
		}
	}
	fmt.Println("\nleast-PU assignment places receivers on locally cold channels;")
	fmt.Println("deafness (parent busy transmitting) grows with concurrency.")
	return nil
}
