// Command resilience demonstrates the resilient execution engine on a
// small operating point:
//
//  1. cooperative cancellation — a run under a context that is canceled
//     mid-flight stops within a few hundred events and hands back its
//     partial result as a typed *core.CanceledError;
//  2. runtime invariant guards — the same run re-executed with guards
//     asserts concurrent-set separation, tree integrity and packet
//     conservation, and reports how often each was checked;
//  3. checkpoint/resume — a sweep journals completed repetitions, is
//     interrupted halfway, and a resumed sweep reproduces the
//     uninterrupted summary byte for byte without redoing finished work.
package main

import (
	"context"
	"errors"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"time"

	"addcrn/internal/core"
	"addcrn/internal/experiment"
	"addcrn/internal/netmodel"
	"addcrn/internal/sim"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func smallParams() netmodel.Params {
	p := netmodel.ScaledDefaultParams()
	p.NumSU = 100
	p.Area = 60
	p.NumPU = 3
	return p
}

func run() error {
	if err := cancellation(); err != nil {
		return err
	}
	if err := guards(); err != nil {
		return err
	}
	return checkpointResume()
}

// cancellation cancels a run after 20 transmissions and inspects the
// partial result the typed error carries.
func cancellation() error {
	fmt.Println("=== cooperative cancellation ===")
	opts := core.DefaultOptions()
	opts.Params = smallParams()
	nw, err := core.BuildNetwork(opts)
	if err != nil {
		return err
	}
	tree, err := core.BuildTree(nw)
	if err != nil {
		return err
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	starts := 0
	res, err := core.CollectContext(ctx, nw, tree.Parent, core.CollectConfig{
		Seed: opts.Seed,
		OnTxStart: func(node int32, now sim.Time) {
			if starts++; starts == 20 {
				cancel()
			}
		},
	})
	var ce *core.CanceledError
	if !errors.As(err, &ce) {
		return fmt.Errorf("expected a CanceledError, got %v", err)
	}
	fmt.Printf("canceled after %d tx starts: outcome=%s, %d/%d delivered at %v (virtual)\n\n",
		starts, res.Outcome, ce.Delivered, ce.Expected, ce.Elapsed.Duration())
	return nil
}

// guards runs the same collection with invariant guards enabled.
func guards() error {
	fmt.Println("=== runtime invariant guards ===")
	opts := core.DefaultOptions()
	opts.Params = smallParams()
	opts.Guard = true
	res, err := core.Run(opts)
	if err != nil {
		return err
	}
	g := res.Guard
	fmt.Printf("delivered %d/%d with guards on: %d concurrency, %d tree, %d conservation checks, %d violations\n\n",
		res.Delivered, res.Expected, g.ConcurrencyChecks, g.TreeChecks, g.ConservationChecks, g.ViolationCount())
	return nil
}

// checkpointResume interrupts a checkpointed sweep partway (simulated by
// truncating its journal) and resumes it.
func checkpointResume() error {
	fmt.Println("=== checkpoint / resume ===")
	dir, err := os.MkdirTemp("", "addc-resilience")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)

	newSweep := func() *experiment.Sweep {
		return &experiment.Sweep{
			ID:     "demo",
			Title:  "delay vs n (resilience demo)",
			XLabel: "n",
			Base:   smallParams(),
			Xs:     []float64{80, 100},
			Apply: func(p netmodel.Params, x float64) netmodel.Params {
				p.NumSU = int(x)
				return p
			},
			Reps:           2,
			Seed:           1,
			MaxVirtualTime: 30 * time.Minute,
		}
	}

	full := newSweep()
	full.Checkpoint = filepath.Join(dir, "full.jsonl")
	start := time.Now()
	fullRes, err := full.Run()
	if err != nil {
		return err
	}
	fullWall := time.Since(start)

	// Simulate an interruption after the first completed repetition: keep
	// the journal's first pair of lines only.
	journal, err := experiment.LoadJournal(full.Checkpoint)
	if err != nil {
		return err
	}
	interrupted := experiment.NewJournal(filepath.Join(dir, "interrupted.jsonl"))
	interrupted.Add(journal.Entries()[:2]...)
	if err := interrupted.Flush(); err != nil {
		return err
	}

	res := newSweep()
	res.Checkpoint = interrupted.Path()
	res.Resume = true
	start = time.Now()
	resumedRes, err := res.Run()
	if err != nil {
		return err
	}
	fmt.Printf("full sweep: %d reps in %v\n", len(full.Xs)*full.Reps, fullWall.Round(time.Millisecond))
	fmt.Printf("resumed sweep: %d reps replayed from checkpoint, rest in %v\n",
		resumedRes.Resumed, time.Since(start).Round(time.Millisecond))
	if resumedRes.FormatCSV() == fullRes.FormatCSV() {
		fmt.Println("resumed summary is byte-identical to the uninterrupted run")
	} else {
		return fmt.Errorf("resumed summary diverged from the uninterrupted run")
	}
	return nil
}
