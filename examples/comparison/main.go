// Command comparison runs ADDC and the Coolest baseline on one shared
// topology (the paper's Section V comparison, single operating point) and
// prints both results side by side, for both baseline MAC profiles:
// the generic CSMA the paper's comparison implies, and the routing-only
// ablation where Coolest borrows ADDC's PCR MAC.
package main

import (
	"fmt"
	"log"
	"time"

	"addcrn/internal/coolest"
	"addcrn/internal/core"
	"addcrn/internal/graphx"
	"addcrn/internal/pcr"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	opts := core.DefaultOptions()
	opts.Seed = 7

	nw, err := core.BuildNetwork(opts)
	if err != nil {
		return err
	}
	consts, err := pcr.Compute(nw.Params)
	if err != nil {
		return err
	}
	adj, err := graphx.UnitDisk(nw.Bounds(), nw.SU, nw.Params.RadiusSU)
	if err != nil {
		return err
	}
	fmt.Printf("topology: n=%d SUs, N=%d PUs, p_t=%.2f, PCR=%.1fm\n\n",
		nw.Params.NumSU, nw.Params.NumPU, nw.Params.ActiveProb, consts.Range)

	cfg := core.CollectConfig{Seed: opts.Seed, MaxVirtualTime: 30 * time.Minute}

	tree, err := core.BuildTree(nw)
	if err != nil {
		return err
	}
	addc, err := core.Collect(nw, tree.Parent, cfg)
	if err != nil {
		return err
	}
	report("ADDC (CDS tree + PCR MAC)", addc)

	coolParents, err := coolest.BuildParentsOn(adj, nw, consts.Range, coolest.MetricAccumulated)
	if err != nil {
		return err
	}

	genericCfg := cfg
	genericCfg.GenericCSMA = true
	coolGeneric, err := core.Collect(nw, coolParents, genericCfg)
	if err != nil {
		return err
	}
	report("Coolest (temperature routing + generic CSMA)", coolGeneric)

	coolSame, err := core.Collect(nw, coolParents, cfg)
	if err != nil {
		return err
	}
	report("Coolest (routing-only ablation: ADDC's MAC)", coolSame)

	fmt.Printf("delay ratio Coolest(generic)/ADDC: %.2fx\n",
		coolGeneric.DelaySlots/addc.DelaySlots)
	fmt.Printf("delay ratio Coolest(same MAC)/ADDC: %.2fx\n",
		coolSame.DelaySlots/addc.DelaySlots)
	return nil
}

func report(name string, res *core.Result) {
	fmt.Printf("%s\n", name)
	fmt.Printf("  delay %.0f slots, capacity %.1f kbit/s\n", res.DelaySlots, res.Capacity/1e3)
	fmt.Printf("  transmissions=%d aborts=%d collisions=%d, mean hops %.2f\n\n",
		res.TotalTransmissions, res.TotalAborts, res.TotalCollisions, res.HopStats.Mean)
}
